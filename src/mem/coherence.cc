#include "mem/coherence.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <deque>

#include "obs/trace.hh"

namespace ccn::mem {

using sim::Tick;

/**
 * Coherence-profiler hook: one predictable branch when the profiler
 * is disabled, nothing at all when compiled out. Hooks never touch
 * protocol state or timing — profiling leaves simulation results
 * bit-identical.
 */
#if CCN_COHERENCE_PROFILER
#define CCN_PROF(call)                                                 \
    do {                                                               \
        if (prof_.enabled())                                           \
            prof_.call;                                                \
    } while (0)
#else
#define CCN_PROF(call)                                                 \
    do {                                                               \
    } while (0)
#endif

CoherentSystem::CoherentSystem(sim::Simulator &sim,
                               const PlatformConfig &config)
    : sim_(sim), cfg_(config)
{
    prof_.enable(obs::CoherenceProfiler::defaultEnabled());
    for (int s = 0; s < cfg_.sockets; ++s) {
        llc_.emplace_back(cfg_.llcLines, cfg_.llcWays);
        upiInto_.emplace_back(sim_, cfg_.upiRawBw);
        dram_.emplace_back(sim_, cfg_.dramBw);
        prefetchOn_.push_back(true);
        allocNext_.push_back(socketBase(s) + 0x10000);
    }
    dir_.reserve(1 << 20);
}

AgentId
CoherentSystem::addAgent(int socket)
{
    assert(socket >= 0 && socket < cfg_.sockets);
    AgentId id = static_cast<AgentId>(agents_.size());
    assert(id < 128 && "SharerSet supports up to 128 L2 caches");
    agents_.push_back(Agent{socket, {}, 0, 0});
    l2_.emplace_back(cfg_.l2Lines, cfg_.l2Ways);
    return id;
}

Addr
CoherentSystem::alloc(int home_socket, std::uint64_t bytes,
                      std::uint64_t align)
{
    assert(align >= 1 && (align & (align - 1)) == 0);
    Addr &next = allocNext_[home_socket];
    next = (next + align - 1) & ~(align - 1);
    Addr base = next;
    next += bytes;
    return base;
}

sim::Gate &
CoherentSystem::gateFor(Addr line)
{
    auto it = gates_.find(line);
    if (it == gates_.end()) {
        it = gates_.emplace(line, std::make_unique<sim::Gate>(sim_))
                 .first;
    }
    return *it->second;
}

void
CoherentSystem::noteWriter(LineDir &d, AgentId a)
{
    if (d.lastWriter >= 0 && d.lastWriter != a)
        d.migratory = true;
    d.lastWriter = static_cast<std::int16_t>(a);
}

void
CoherentSystem::bumpVersion(LineDir &d, Addr line, Tick when)
{
    d.version++;
    if (faultsArmed_) {
        // A stuck invalidation defers the waiter wakeup past the
        // fault window; pollers meanwhile still observe the held
        // (stale) version via lineVersion().
        auto st = stuck_.find(line);
        if (st != stuck_.end()) {
            if (st->second.until > when)
                when = st->second.until;
            else
                stuck_.erase(st);
        }
    }
    auto it = gates_.find(line);
    if (it != gates_.end() && it->second->hasWaiters()) {
        sim::Gate *g = it->second.get();
        sim_.scheduleCallback(when, [g] { g->notifyAll(); });
    }
}

Tick
CoherentSystem::linkXfer(int to_socket, std::uint32_t bytes, Tick t)
{
    return upiInto_[to_socket].reserveAt(t, bytes) + cfg_.upiHop;
}

Tick
CoherentSystem::dramAccess(int socket, std::uint32_t bytes, Tick t)
{
    return dram_[socket].reserveAt(t, bytes) + cfg_.dramLat;
}

void
CoherentSystem::insertLlc(int socket, Addr line, bool dirty)
{
    if (CacheEntry *le = llc_[socket].touch(line)) {
        le->dirty |= dirty;
        if (dirty)
            dir_[line].llcDirty |= std::uint8_t(1) << socket;
        return;
    }
    Eviction ev;
    llc_[socket].insert(line, LineState::Shared, dirty, &ev);
    LineDir &d = dir_[line];
    d.llcMask |= std::uint8_t(1) << socket;
    if (dirty)
        d.llcDirty |= std::uint8_t(1) << socket;

    if (ev.valid) {
        LineDir &vd = dir_[ev.line];
        vd.llcMask &= ~(std::uint8_t(1) << socket);
        vd.llcDirty &= ~(std::uint8_t(1) << socket);
        if (ev.dirty) {
            // Dirty victim writes back to its home memory; bandwidth
            // cost only, off any requester's critical path.
            const int h = homeSocket(ev.line);
            Tick t = sim_.now();
            if (h != socket)
                t = linkXfer(h, cfg_.dataMsgBytes, t);
            dram_[h].reserveAt(t, kLineBytes);
        }
    }
}

void
CoherentSystem::handleL2Eviction(AgentId a, const Eviction &ev)
{
    LineDir &d = dir_[ev.line];
    const int s = agents_[a].socket;
    switch (ev.state) {
      case LineState::Modified:
        if (d.owner == a)
            d.owner = -1;
        insertLlc(s, ev.line, true);
        break;
      case LineState::Exclusive:
        if (d.owner == a)
            d.owner = -1;
        insertLlc(s, ev.line, ev.dirty);
        break;
      case LineState::Shared:
        d.sharers.clear(a);
        break;
      case LineState::Invalid:
        break;
    }
}

void
CoherentSystem::installL2(AgentId a, Addr line, LineState state,
                          bool dirty, Tick ready_at)
{
    Eviction ev;
    CacheEntry *e = l2_[a].insert(line, state, dirty, &ev);
    e->readyAt = ready_at;
    if (ev.valid)
        handleL2Eviction(a, ev);
}

CoherentSystem::InvalResult
CoherentSystem::invalidateCopies(LineDir &d, Addr line, int req_socket,
                                 AgentId except_agent)
{
    InvalResult r;
    if (d.owner >= 0 && d.owner != except_agent) {
        if (CacheEntry *oe = l2_[d.owner].find(line)) {
            r.dirtyFound = (oe->state == LineState::Modified);
            r.dirtyOwner = d.owner;
            const int os = agents_[d.owner].socket;
            (os == req_socket ? r.anyLocal : r.anyRemote) = true;
            l2_[d.owner].erase(line);
            telem_.invalidations++;
            CCN_PROF(noteInvalidation(line, sim_.now()));
        }
        d.owner = -1;
    }
    if (d.sharers.any()) {
        for (int w = 0; w < 2; ++w) {
            std::uint64_t bits = d.sharers.w[w];
            while (bits) {
                const int i = w * 64 + std::countr_zero(bits);
                bits &= bits - 1;
                if (i == except_agent)
                    continue;
                if (i < static_cast<int>(l2_.size()) &&
                    l2_[i].erase(line)) {
                    const int is = agents_[i].socket;
                    (is == req_socket ? r.anyLocal : r.anyRemote) = true;
                    telem_.invalidations++;
                    CCN_PROF(noteInvalidation(line, sim_.now()));
                }
            }
        }
        const bool keep = except_agent >= 0 &&
                          d.sharers.test(except_agent);
        d.sharers.reset();
        if (keep)
            d.sharers.set(except_agent);
    }
    for (int k = 0; k < cfg_.sockets; ++k) {
        if (d.llcMask & (std::uint8_t(1) << k)) {
            llc_[k].erase(line);
            if (d.llcDirty & (std::uint8_t(1) << k))
                r.dirtyFound = true;
            if (k == req_socket)
                r.llcLocal = true;
            else
                r.llcRemote = true;
        }
    }
    d.llcMask = 0;
    d.llcDirty = 0;
    return r;
}

void
CoherentSystem::maybePrefetch(AgentId a, Addr miss_line, Tick start)
{
    Agent &ag = agents_[a];
    if (miss_line == ag.lastMissLine + kLineBytes) {
        ag.missStreak++;
    } else if (miss_line != ag.lastMissLine) {
        ag.missStreak = 1;
    }
    ag.lastMissLine = miss_line;
    if (!prefetchOn_[ag.socket] || ag.missStreak < cfg_.prefetchTrigger)
        return;
    for (int i = 1; i <= cfg_.prefetchDepth; ++i) {
        const Addr p = miss_line + static_cast<Addr>(i) * kLineBytes;
        if (l2_[a].find(p))
            continue;
        ag.counters.prefetchIssued++;
        walkLine(a, p, false, start, /*prefetch=*/true);
        if (CacheEntry *pe = l2_[a].find(p))
            pe->wasPrefetch = true;
    }
}

Tick
CoherentSystem::walkLine(AgentId a, Addr line, bool write, Tick start,
                         bool prefetch)
{
    if (faultsArmed_) {
        auto it = brownouts_.find(a);
        if (it != brownouts_.end()) {
            if (start >= it->second.until) {
                brownouts_.erase(it);
            } else {
                const double factor = it->second.factor;
                Tick t = walkLineProtocol(a, line, write, start,
                                          prefetch);
                if (t > start && factor > 1.0) {
                    t = start + static_cast<Tick>(
                                    static_cast<double>(t - start) *
                                    factor);
                    if (!prefetch)
                        telem_.brownoutStretchedOps++;
                }
                return t;
            }
        }
    }
    return walkLineProtocol(a, line, write, start, prefetch);
}

Tick
CoherentSystem::walkLineProtocol(AgentId a, Addr line, bool write,
                                 Tick start, bool prefetch)
{
    Agent &ag = agents_[a];
    const int s = ag.socket;
    SetAssocCache &l2 = l2_[a];

    if (CacheEntry *e = l2.touch(line)) {
        const Tick hit_done =
            std::max(start + cfg_.l2HitLat, e->readyAt);
        if (!write) {
            if (!prefetch) {
                ag.counters.l2Hits++;
                if (e->wasPrefetch) {
                    // Demand hit on a prefetched line sustains the
                    // stream (prefetch-hit feedback).
                    e->wasPrefetch = false;
                    ag.missStreak++;
                    ag.lastMissLine = line;
                    maybePrefetch(a, line, start);
                }
            }
            return hit_done;
        }
        if (e->state == LineState::Modified ||
            e->state == LineState::Exclusive) {
            e->state = LineState::Modified;
            e->dirty = true;
            LineDir &d = dir_[line];
            d.owner = static_cast<std::int16_t>(a);
            if (!prefetch) {
                ag.counters.l2Hits++;
                noteWriter(d, a);
                d.writeBusyUntil = std::max(d.writeBusyUntil, hit_done);
                bumpVersion(d, line, hit_done);
            }
            return hit_done;
        }
        // Ownership upgrade from a Shared copy: invalidate all other
        // copies; no data transfer needed.
        if (!prefetch)
            ag.counters.l2Misses++;
        LineDir &d = dir_[line];
        start = std::max(start, d.busyUntil);
        Tick t = start + cfg_.chaLookupLat;
        InvalResult inv = invalidateCopies(d, line, s, a);
        if (inv.anyLocal || inv.llcLocal)
            t += cfg_.invalidateLat;
        if (inv.anyRemote || inv.llcRemote) {
            t = linkXfer(1 - s, cfg_.ctrlMsgBytes, t);
            t = linkXfer(s, cfg_.ctrlMsgBytes, t);
            if (!prefetch) {
                ag.counters.remoteRfos++;
                telem_.remoteRfos++;
                obs::tracepoint(obs::EventKind::CoherenceRemoteRfo,
                                "rfo.upgrade", t, line);
                // Upgrade: invalidation + ack control messages only.
                CCN_PROF(noteRemoteRfo(line, a, inv.dirtyOwner,
                                       2 * cfg_.ctrlMsgBytes, t));
            } else {
                ag.counters.prefetchRemote++;
            }
        }
        e->state = LineState::Modified;
        e->dirty = true;
        d.owner = static_cast<std::int16_t>(a);
        d.sharers.reset();
        d.busyUntil = t;
        if (!prefetch) {
            noteWriter(d, a);
            d.writeBusyUntil = std::max(d.writeBusyUntil, t);
            bumpVersion(d, line, t);
        }
        return t;
    }

    // L2 miss.
    if (!prefetch)
        ag.counters.l2Misses++;

    LineDir &d = dir_[line];
    start = std::max(start, d.busyUntil);
    const int home = homeSocket(line);
    Tick t = start + cfg_.chaLookupLat;
    bool crossed = false;

    if (write) {
        InvalResult inv = invalidateCopies(d, line, s, a);
        if (inv.anyLocal || inv.llcLocal)
            t += cfg_.invalidateLat;
        if (inv.dirtyOwner >= 0) {
            // Fetch the line from the previous owner's L2.
            const int os = agents_[inv.dirtyOwner].socket;
            if (os == s) {
                t += cfg_.snoopFwdLocal;
            } else {
                crossed = true;
                t = linkXfer(os, cfg_.ctrlMsgBytes, t);
                t += cfg_.remoteChaLat + cfg_.snoopFwdRemote;
                t = linkXfer(s, cfg_.dataMsgBytes, t);
                if (home == s) {
                    t += cfg_.specReadPenalty;
                    dram_[s].reserveAt(start, kLineBytes);
                }
            }
        } else if (inv.llcLocal) {
            t += cfg_.llcDataLat;
        } else if (inv.llcRemote) {
            crossed = true;
            t = linkXfer(1 - s, cfg_.ctrlMsgBytes, t);
            t += cfg_.remoteChaLat + cfg_.llcDataLat;
            t = linkXfer(s, cfg_.dataMsgBytes, t);
        } else {
            // Data from home memory.
            if (home == s) {
                t = dramAccess(s, kLineBytes, t);
                if (!prefetch) {
                    ag.counters.dramReads++;
                    telem_.dramReads++;
                }
            } else {
                crossed = true;
                t = linkXfer(home, cfg_.ctrlMsgBytes, t);
                t += cfg_.remoteChaLat;
                t = dramAccess(home, kLineBytes, t);
                t = linkXfer(s, cfg_.dataMsgBytes, t);
                if (!prefetch) {
                    ag.counters.dramReads++;
                    telem_.dramReads++;
                }
            }
        }
        if (inv.anyRemote && !crossed) {
            // Invalidation/ack roundtrip to the other socket.
            crossed = true;
            t = linkXfer(1 - s, cfg_.ctrlMsgBytes, t);
            t = linkXfer(s, cfg_.ctrlMsgBytes, t);
        }
        if (crossed) {
            if (!prefetch) {
                ag.counters.remoteRfos++;
                telem_.remoteRfos++;
                obs::tracepoint(obs::EventKind::CoherenceRemoteRfo,
                                "rfo.miss", t, line);
                CCN_PROF(noteRemoteRfo(
                    line, a, inv.dirtyOwner,
                    cfg_.ctrlMsgBytes + cfg_.dataMsgBytes, t));
            } else {
                ag.counters.prefetchRemote++;
            }
        }
        installL2(a, line, LineState::Modified, true, t);
        d.owner = static_cast<std::int16_t>(a);
        d.sharers.reset();
        d.busyUntil = t;
        if (!prefetch) {
            noteWriter(d, a);
            d.writeBusyUntil = std::max(d.writeBusyUntil, t);
            bumpVersion(d, line, t);
            maybePrefetch(a, line, start);
        }
        return t;
    }

    // Read miss.
    CacheEntry *oe = nullptr;
    int supplier = -1; ///< Forwarding L2 agent; -1 = home/LLC supply.
    if (d.owner >= 0 && d.owner != a)
        oe = l2_[d.owner].find(line);

    // A read that arrives while (or just after) a write transaction
    // held the line had its request already queued at the home agent;
    // it skips the local-lookup and request-link legs and is serviced
    // as a forward right after the write completes. This is what makes
    // coherence-based signaling cheaper than two independent misses.
    const bool queued =
        !write && d.busyUntil + cfg_.upiHop >= start &&
        d.busyUntil > 0;

    if (oe) {
        const AgentId owner = d.owner;
        const int os = agents_[owner].socket;
        supplier = owner;
        if (os == s) {
            t += cfg_.snoopFwdLocal;
        } else if (queued) {
            crossed = true;
            t = start + cfg_.remoteChaLat + cfg_.snoopFwdRemote;
            t = linkXfer(s, cfg_.dataMsgBytes, t);
        } else {
            crossed = true;
            t = linkXfer(os, cfg_.ctrlMsgBytes, t);
            t += cfg_.remoteChaLat + cfg_.snoopFwdRemote;
            t = linkXfer(s, cfg_.dataMsgBytes, t);
        }
        if (os != s && home == s) {
            // Reader-homed: the local CHA issues a speculative
            // memory read in parallel (wasted bandwidth + small
            // latency penalty; §3.2).
            t += cfg_.specReadPenalty;
            dram_[s].reserveAt(start, kLineBytes);
        }
        if (oe->state == LineState::Modified && d.migratory &&
            !prefetch) {
            // Migratory handoff: grant dirty ownership to the reader
            // so its expected follow-up write hits locally. The old
            // owner's copy is invalidated in the same transaction.
            l2_[owner].erase(line);
            d.owner = -1;
            telem_.migratoryHandoffs++;
            obs::tracepoint(obs::EventKind::CoherenceMigratory,
                            "migratory.handoff", t, line);
            CCN_PROF(noteMigratory(line, a, owner, t));
            if (crossed) {
                ag.counters.remoteReads++;
                telem_.remoteReads++;
                CCN_PROF(noteRemoteRead(
                    line, a, owner,
                    cfg_.ctrlMsgBytes + cfg_.dataMsgBytes, t));
            }
            installL2(a, line, LineState::Exclusive, true, t);
            d.owner = static_cast<std::int16_t>(a);
            d.busyUntil = t;
            if (CacheEntry *ge = l2.find(line))
                ge->wasPrefetch = false;
            maybePrefetch(a, line, start);
            return t;
        }
        if (oe->state != LineState::Modified) {
            // An earlier migratory grant was never written: the
            // pattern is not migratory after all. Fall back to plain
            // producer-consumer sharing.
            d.migratory = false;
        }
        if (oe->dirty) {
            // Dirty data implicitly writes back to home memory on the
            // downgrade (bandwidth only).
            dram_[home].reserveAt(t, kLineBytes);
        }
        oe->state = LineState::Shared;
        oe->dirty = false;
        d.sharers.set(owner);
        d.owner = -1;
    } else if (d.llcMask & (std::uint8_t(1) << s)) {
        t += cfg_.llcDataLat;
        llc_[s].touch(line);
        if (!prefetch) {
            ag.counters.llcHits++;
            telem_.llcHits++;
        }
    } else if (d.llcMask) {
        const int r = (d.llcMask & 1) ? 0 : 1;
        crossed = true;
        t = linkXfer(r, cfg_.ctrlMsgBytes, t);
        t += cfg_.remoteChaLat + cfg_.llcDataLat;
        t = linkXfer(s, cfg_.dataMsgBytes, t);
        llc_[r].touch(line);
    } else {
        if (home == s) {
            t = dramAccess(s, kLineBytes, t);
        } else {
            crossed = true;
            t = linkXfer(home, cfg_.ctrlMsgBytes, t);
            t += cfg_.remoteChaLat;
            t = dramAccess(home, kLineBytes, t);
            t = linkXfer(s, cfg_.dataMsgBytes, t);
        }
        if (!prefetch) {
            ag.counters.dramReads++;
            telem_.dramReads++;
        }
    }

    if (crossed) {
        if (!prefetch) {
            ag.counters.remoteReads++;
            telem_.remoteReads++;
            obs::tracepoint(obs::EventKind::CoherenceRemoteRead,
                            "read.miss", t, line);
            CCN_PROF(noteRemoteRead(
                line, a, supplier,
                cfg_.ctrlMsgBytes + cfg_.dataMsgBytes, t));
        } else {
            ag.counters.prefetchRemote++;
        }
    }

    d.busyUntil = t;
    const bool exclusive =
        d.owner < 0 && !d.sharers.any() && d.llcMask == 0;
    installL2(a, line,
              exclusive ? LineState::Exclusive : LineState::Shared,
              false, t);
    if (exclusive)
        d.owner = static_cast<std::int16_t>(a);
    else
        d.sharers.set(a);

    if (!prefetch)
        maybePrefetch(a, line, start);
    return t;
}

sim::Coro<void>
CoherentSystem::load(AgentId a, Addr addr, std::uint32_t bytes)
{
    agents_[a].counters.loads++;
    const Tick start = sim_.now();
    Tick done = start;
    const Addr first = lineOf(addr);
    const Addr last = lineOf(addr + (bytes ? bytes - 1 : 0));
    for (Addr l = first; l <= last; l += kLineBytes)
        done = std::max(done, walkLine(a, l, false, start, false));
    if (done > sim_.now())
        co_await sim_.delayUntil(done);
    co_return;
}

sim::Coro<void>
CoherentSystem::store(AgentId a, Addr addr, std::uint32_t bytes)
{
    agents_[a].counters.stores++;
    const Tick start = sim_.now();
    Tick done = start;
    const Addr first = lineOf(addr);
    const Addr last = lineOf(addr + (bytes ? bytes - 1 : 0));
    for (Addr l = first; l <= last; l += kLineBytes)
        done = std::max(done, walkLine(a, l, true, start, false));
    if (done > sim_.now())
        co_await sim_.delayUntil(done);
    co_return;
}

sim::Coro<void>
CoherentSystem::atomicRmw(AgentId a, Addr addr)
{
    agents_[a].counters.stores++;
    const Tick start = sim_.now();
    const Tick done =
        walkLine(a, lineOf(addr), true, start, false) +
        cfg_.atomicExtraLat;
    co_await sim_.delayUntil(done);
    co_return;
}

sim::Coro<void>
CoherentSystem::flush(AgentId a, Addr addr, std::uint32_t bytes)
{
    const Tick start = sim_.now();
    Tick t = start;
    const Addr first = lineOf(addr);
    const Addr last = lineOf(addr + (bytes ? bytes - 1 : 0));
    const int s = agents_[a].socket;
    for (Addr l = first; l <= last; l += kLineBytes) {
        // CLFLUSHOPT: serialized per-line issue cost (§3.3 notes it is
        // expensive and per-line); dirty data writes back to home.
        t += cfg_.flushLat;
        LineDir &d = dir_[l];
        InvalResult inv = invalidateCopies(d, l, s, -1);
        if (inv.dirtyFound) {
            const int h = homeSocket(l);
            Tick wb = t;
            if (h != s)
                wb = linkXfer(h, cfg_.dataMsgBytes, wb);
            dram_[h].reserveAt(wb, kLineBytes);
        }
    }
    co_await sim_.delayUntil(t);
    co_return;
}

sim::Coro<void>
CoherentSystem::loadRange(AgentId a, Addr addr, std::uint64_t bytes)
{
    agents_[a].counters.loads++;
    const Tick start = sim_.now();
    const std::size_t window =
        static_cast<std::size_t>(cfg_.mshrsPerCore);
    std::deque<Tick> inflight;
    Tick done = start;
    Tick t = start;
    const Addr first = lineOf(addr);
    const Addr last = lineOf(addr + (bytes ? bytes - 1 : 0));
    for (Addr l = first; l <= last; l += kLineBytes) {
        Tick issue = t;
        if (inflight.size() == window) {
            issue = std::max(t, inflight.front());
            inflight.pop_front();
        }
        const Tick c = walkLine(a, l, false, issue, false);
        inflight.push_back(c);
        done = std::max(done, c);
        t = issue;
    }
    if (done > sim_.now())
        co_await sim_.delayUntil(done);
    co_return;
}

sim::Coro<void>
CoherentSystem::storeRange(AgentId a, Addr addr, std::uint64_t bytes)
{
    agents_[a].counters.stores++;
    const Tick start = sim_.now();
    const std::size_t window =
        static_cast<std::size_t>(cfg_.mshrsPerCore);
    std::deque<Tick> inflight;
    Tick done = start;
    Tick t = start;
    const Addr first = lineOf(addr);
    const Addr last = lineOf(addr + (bytes ? bytes - 1 : 0));
    for (Addr l = first; l <= last; l += kLineBytes) {
        Tick issue = t;
        if (inflight.size() == window) {
            issue = std::max(t, inflight.front());
            inflight.pop_front();
        }
        const Tick c = walkLine(a, l, true, issue, false);
        inflight.push_back(c);
        done = std::max(done, c);
        t = issue;
    }
    // Logical state is published when the whole range completes;
    // extend each line's pending-write horizon so pollers woken by an
    // individual line's completion re-wait until the publish.
    for (Addr l = first; l <= last; l += kLineBytes) {
        LineDir &d = dir_[l];
        d.writeBusyUntil = std::max(d.writeBusyUntil, done);
    }
    if (done > sim_.now())
        co_await sim_.delayUntil(done);
    co_return;
}

sim::Coro<void>
CoherentSystem::ntStoreRange(AgentId a, Addr addr, std::uint64_t bytes)
{
    const Tick start = sim_.now();
    const int s = agents_[a].socket;
    // NT stores drain through the line-fill/WC buffers: concurrency is
    // LFB-limited, well below the regular store-buffer depth.
    const std::size_t window = static_cast<std::size_t>(
        std::max(4, cfg_.wcBuffers / 3));
    std::deque<Tick> inflight;
    Tick done = start;
    Tick t = start;
    const Addr first = lineOf(addr);
    const Addr last = lineOf(addr + (bytes ? bytes - 1 : 0));
    for (Addr l = first; l <= last; l += kLineBytes) {
        agents_[a].counters.stores++;
        Tick issue = t;
        if (inflight.size() == window) {
            issue = std::max(t, inflight.front());
            inflight.pop_front();
        }
        LineDir &d = dir_[l];
        invalidateCopies(d, l, s, -1);
        l2_[a].erase(l); // NT stores never allocate locally.
        d.lastWriter = static_cast<std::int16_t>(a);
        d.migratory = false; // Streaming, not migratory.
        const int home = homeSocket(l);
        Tick c = std::max(issue, d.busyUntil) + cfg_.cycles(1.0);
        if (home != s) {
            // Remote NT write: ownership handshake over the link.
            c = upiInto_[home].reserveAt(c, cfg_.ntMsgBytes) +
                cfg_.upiHop;
        }
        c = dram_[home].reserveAt(c, kLineBytes) + cfg_.dramLat / 2;
        d.busyUntil = c;
        d.writeBusyUntil = std::max(d.writeBusyUntil, c);
        bumpVersion(d, l, c);
        inflight.push_back(c);
        done = std::max(done, c);
        t = issue;
    }
    if (done > sim_.now())
        co_await sim_.delayUntil(done);
    co_return;
}

sim::Coro<void>
CoherentSystem::accessMulti(AgentId a, const std::vector<Span> &spans,
                            bool write)
{
    if (write)
        agents_[a].counters.stores++;
    else
        agents_[a].counters.loads++;
    const Tick start = sim_.now();
    const std::size_t window =
        static_cast<std::size_t>(cfg_.mshrsPerCore);
    std::deque<Tick> inflight;
    Tick done = start;
    Tick t = start;
    for (const Span &sp : spans) {
        if (sp.bytes == 0)
            continue;
        const Addr first = lineOf(sp.addr);
        const Addr last = lineOf(sp.addr + sp.bytes - 1);
        for (Addr l = first; l <= last; l += kLineBytes) {
            Tick issue = t;
            if (inflight.size() == window) {
                issue = std::max(t, inflight.front());
                inflight.pop_front();
            }
            const Tick c = walkLine(a, l, write, issue, false);
            inflight.push_back(c);
            done = std::max(done, c);
            t = issue;
        }
    }
    if (write) {
        // Publish-at-end semantics: see storeRange().
        for (const Span &sp : spans) {
            if (sp.bytes == 0)
                continue;
            const Addr first = lineOf(sp.addr);
            const Addr last = lineOf(sp.addr + sp.bytes - 1);
            for (Addr l = first; l <= last; l += kLineBytes) {
                LineDir &d = dir_[l];
                d.writeBusyUntil = std::max(d.writeBusyUntil, done);
            }
        }
    }
    if (done > sim_.now())
        co_await sim_.delayUntil(done);
    co_return;
}

sim::Coro<void>
CoherentSystem::postMulti(AgentId a, const std::vector<Span> &spans,
                          std::function<void()> on_complete)
{
    Agent &ag = agents_[a];
    ag.counters.stores++;

    // Store-buffer admission: wait until there is room for the new
    // lines among the outstanding posted stores.
    std::uint64_t lines = 0;
    for (const Span &sp : spans)
        lines += linesCovered(sp.addr, sp.bytes);
    const std::size_t depth =
        static_cast<std::size_t>(cfg_.storeBufDepth);
    while (!ag.posted.empty() && ag.posted.front() <= sim_.now())
        ag.posted.pop_front();
    if (ag.posted.size() + lines > depth &&
        ag.posted.size() >= lines) {
        const Tick wait_for =
            ag.posted[ag.posted.size() - std::min(ag.posted.size(),
                                                  static_cast<std::size_t>(
                                                      lines))];
        co_await sim_.delayUntil(wait_for);
        while (!ag.posted.empty() && ag.posted.front() <= sim_.now())
            ag.posted.pop_front();
    }

    const Tick start = sim_.now();
    const std::size_t window =
        static_cast<std::size_t>(cfg_.mshrsPerCore);
    std::deque<Tick> inflight;
    Tick done = start;
    Tick t = start;
    for (const Span &sp : spans) {
        if (sp.bytes == 0)
            continue;
        const Addr first = lineOf(sp.addr);
        const Addr last = lineOf(sp.addr + sp.bytes - 1);
        for (Addr l = first; l <= last; l += kLineBytes) {
            Tick issue = t;
            if (inflight.size() == window) {
                issue = std::max(t, inflight.front());
                inflight.pop_front();
            }
            const Tick c = walkLine(a, l, true, issue, false);
            inflight.push_back(c);
            done = std::max(done, c);
            t = issue;
            ag.posted.push_back(c);
        }
    }
    std::sort(ag.posted.begin(), ag.posted.end());

    // TSO: a later posted write never becomes visible before an
    // earlier one from the same core.
    done = std::max(done, ag.lastPostedPublish);
    ag.lastPostedPublish = done;
    for (const Span &sp : spans) {
        if (sp.bytes == 0)
            continue;
        const Addr first = lineOf(sp.addr);
        const Addr last = lineOf(sp.addr + sp.bytes - 1);
        for (Addr l = first; l <= last; l += kLineBytes) {
            LineDir &d = dir_[l];
            d.writeBusyUntil = std::max(d.writeBusyUntil, done);
        }
    }
    if (on_complete) {
        if (done > sim_.now())
            sim_.scheduleCallback(done, std::move(on_complete));
        else
            on_complete();
    }
    // The issuing core only pays a small retire cost.
    co_await sim_.delay(cfg_.cycles(1.0 + 0.5 * static_cast<double>(
                                              lines)));
    co_return;
}

sim::Coro<void>
CoherentSystem::waitLineChangeUntil(Addr line,
                                    std::uint32_t seen_version,
                                    sim::Tick deadline)
{
    if (faultsArmed_) {
        auto st = stuck_.find(lineOf(line));
        if (st != stuck_.end() && st->second.until > sim_.now()) {
            // Invalidation stuck: the poller's cached copy never
            // changes, so it sleeps out the window (or its deadline).
            co_await sim_.delayUntil(
                std::min(deadline, st->second.until));
            co_return;
        }
    }
    LineDir &d = dir_[lineOf(line)];
    if (d.version != seen_version || deadline <= sim_.now())
        co_return;
    if (d.writeBusyUntil > sim_.now()) {
        co_await sim_.delayUntil(
            std::min(deadline, d.writeBusyUntil));
        co_return;
    }
    co_await gateFor(lineOf(line)).waitUntil(deadline);
    co_return;
}

void
CoherentSystem::touchLine(AgentId a, Addr line)
{
    line = lineOf(line);
    if (l2_[a].find(line))
        return;
    agents_[a].counters.loads++;
    walkLine(a, line, false, sim_.now(), false);
}

std::uint32_t
CoherentSystem::lineVersion(Addr line)
{
    if (faultsArmed_) {
        auto st = stuck_.find(lineOf(line));
        if (st != stuck_.end()) {
            if (st->second.until > sim_.now())
                return st->second.heldVersion;
            stuck_.erase(st);
        }
    }
    return dir_[lineOf(line)].version;
}

sim::Coro<void>
CoherentSystem::waitLineChange(Addr line, std::uint32_t seen_version)
{
    if (faultsArmed_) {
        auto st = stuck_.find(lineOf(line));
        if (st != stuck_.end() && st->second.until > sim_.now()) {
            co_await sim_.delayUntil(st->second.until);
            co_return;
        }
    }
    LineDir &d = dir_[lineOf(line)];
    if (d.version != seen_version)
        co_return;
    if (d.writeBusyUntil > sim_.now()) {
        // A write on this line is still in flight; its completion is
        // the wakeup (this closes the lost-wakeup window for waiters
        // arriving after the write's walk but before its completion).
        // Read transfers deliberately do not wake pollers.
        co_await sim_.delayUntil(d.writeBusyUntil);
        co_return;
    }
    co_await gateFor(lineOf(line)).wait();
    co_return;
}

Tick
CoherentSystem::ddioWrite(int socket, Addr addr, std::uint32_t bytes,
                          Tick start)
{
    Tick t = start + cfg_.chaLookupLat;
    const Addr first = lineOf(addr);
    const Addr last = lineOf(addr + (bytes ? bytes - 1 : 0));
    for (Addr l = first; l <= last; l += kLineBytes) {
        LineDir &d = dir_[l];
        invalidateCopies(d, l, socket, -1);
        insertLlc(socket, l, true);
        d.lastWriter = -1;
        d.migratory = false;
        d.writeBusyUntil = std::max(d.writeBusyUntil, t);
        bumpVersion(d, l, t);
        telem_.ddioWrites++;
    }
    return t;
}

Tick
CoherentSystem::dmaRead(int socket, Addr addr, std::uint32_t bytes,
                        Tick start)
{
    Tick done = start;
    const Addr first = lineOf(addr);
    const Addr last = lineOf(addr + (bytes ? bytes - 1 : 0));
    for (Addr l = first; l <= last; l += kLineBytes) {
        LineDir &d = dir_[l];
        Tick t = start + cfg_.chaLookupLat;
        CacheEntry *oe = nullptr;
        if (d.owner >= 0)
            oe = l2_[d.owner].find(l);
        if (oe) {
            const int os = agents_[d.owner].socket;
            t += (os == socket) ? cfg_.snoopFwdLocal
                                : (2 * cfg_.upiHop + cfg_.remoteChaLat +
                                   cfg_.snoopFwdRemote);
        } else if (d.llcMask & (std::uint8_t(1) << socket)) {
            t += cfg_.llcDataLat;
            llc_[socket].touch(l);
        } else {
            t = dramAccess(homeSocket(l), kLineBytes, t);
        }
        done = std::max(done, t);
    }
    return done;
}

void
CoherentSystem::injectPoison(Addr line, Tick hold)
{
    faultsArmed_ = true;
    line = lineOf(line);
    Tick &until = poisoned_[line];
    until = std::max(until, sim_.now() + hold);
    telem_.poisonInjected++;
    obs::tracepoint(obs::EventKind::Custom, "mem.fault.poison",
                    sim_.now(), line);
}

void
CoherentSystem::injectTorn(Addr line, Tick hold)
{
    faultsArmed_ = true;
    line = lineOf(line);
    Tick &until = torn_[line];
    until = std::max(until, sim_.now() + hold);
    telem_.tornInjected++;
    obs::tracepoint(obs::EventKind::Custom, "mem.fault.torn",
                    sim_.now(), line);
}

void
CoherentSystem::injectStuck(Addr line, Tick hold)
{
    faultsArmed_ = true;
    line = lineOf(line);
    StuckFault &f = stuck_[line];
    f.until = std::max(f.until, sim_.now() + hold);
    f.heldVersion = dir_[line].version;
    telem_.stuckInjected++;
    obs::tracepoint(obs::EventKind::Custom, "mem.fault.stuck",
                    sim_.now(), line);
}

void
CoherentSystem::injectBrownout(AgentId a, double factor, Tick hold)
{
    faultsArmed_ = true;
    BrownoutFault &f = brownouts_[a];
    f.factor = std::max(f.factor, factor);
    f.until = std::max(f.until, sim_.now() + hold);
    telem_.brownouts++;
    obs::tracepoint(obs::EventKind::Custom, "mem.fault.brownout",
                    sim_.now(), static_cast<Addr>(a));
}

bool
CoherentSystem::rangePoisoned(Addr addr, std::uint32_t bytes)
{
    if (!faultsArmed_ || poisoned_.empty())
        return false;
    const Tick now = sim_.now();
    const Addr first = lineOf(addr);
    const Addr last = lineOf(addr + (bytes ? bytes - 1 : 0));
    bool hit = false;
    for (Addr l = first; l <= last; l += kLineBytes) {
        auto it = poisoned_.find(l);
        if (it == poisoned_.end())
            continue;
        if (it->second > now) {
            hit = true;
        } else {
            poisoned_.erase(it);
        }
    }
    if (hit)
        telem_.poisonReads++;
    return hit;
}

bool
CoherentSystem::rangeStale(Addr addr, std::uint32_t bytes)
{
    if (!faultsArmed_ || (torn_.empty() && stuck_.empty()))
        return false;
    const Tick now = sim_.now();
    const Addr first = lineOf(addr);
    const Addr last = lineOf(addr + (bytes ? bytes - 1 : 0));
    bool stale = false;
    for (Addr l = first; l <= last; l += kLineBytes) {
        auto it = torn_.find(l);
        if (it != torn_.end()) {
            if (it->second > now) {
                stale = true;
                telem_.tornStaleReads++;
            } else {
                torn_.erase(it);
            }
        }
        auto st = stuck_.find(l);
        if (st != stuck_.end()) {
            if (st->second.until > now)
                stale = true;
            else
                stuck_.erase(st);
        }
    }
    return stale;
}

void
CoherentSystem::setPrefetch(int socket, bool enabled)
{
    prefetchOn_[socket] = enabled;
}

void
CoherentSystem::scaleRemotePerf(double lat_factor, double bw_factor)
{
    auto scale = [lat_factor](Tick &t) {
        t = static_cast<Tick>(static_cast<double>(t) * lat_factor + 0.5);
    };
    scale(cfg_.upiHop);
    scale(cfg_.remoteChaLat);
    scale(cfg_.snoopFwdRemote);
    for (auto &link : upiInto_)
        link.setRate(link.rate() * bw_factor);
}

std::uint64_t
CoherentSystem::upiBytesInto(int socket) const
{
    return upiInto_[socket].bytesServed();
}

void
CoherentSystem::resetStats()
{
    for (auto &ag : agents_)
        ag.counters.reset();
    for (auto &link : upiInto_)
        link.resetStats();
    for (auto &d : dram_)
        d.resetStats();
}

void
CoherentSystem::dropCaches()
{
    for (auto &c : l2_)
        c.clear();
    for (auto &c : llc_)
        c.clear();
    for (auto &[line, d] : dir_) {
        d.owner = -1;
        d.sharers.reset();
        d.llcMask = 0;
        d.llcDirty = 0;
    }
    for (auto &ag : agents_) {
        ag.lastMissLine = 0;
        ag.missStreak = 0;
    }
}

} // namespace ccn::mem
