/**
 * @file
 * Shared helpers for the per-figure benchmark binaries.
 *
 * Every bench builds fresh simulated worlds per measurement point
 * (deterministic, seeded) and prints measured values next to the
 * paper's reported numbers so EXPERIMENTS.md can be assembled straight
 * from bench output.
 */

#ifndef CCN_BENCH_COMMON_HH
#define CCN_BENCH_COMMON_HH

#include <fstream>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ccnic/ccnic.hh"
#include "mem/platform.hh"
#include "nic/pcie_nic.hh"
#include "pio/pio.hh"
#include "obs/obs.hh"
#include "obs/sampler.hh"
#include "obs/span.hh"
#include "obs/trace.hh"
#include "stats/json.hh"
#include "stats/table.hh"
#include "workload/loopback.hh"

namespace ccn::bench {

/**
 * Command-line options shared by the bench binaries.
 *
 * `--trace <file>` enables the global tracepoint ring for the whole
 * run and writes it as JSON (array of {tick, kind, name, arg}
 * objects) on finish(); summarize with tools/trace_summary.py.
 */
struct BenchOptions
{
    std::string traceFile;

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions o;
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--trace" && i + 1 < argc) {
                o.traceFile = argv[++i];
                obs::Trace::global().enable(1 << 18);
            }
        }
        return o;
    }

    /** Write the accumulated trace if --trace was given. */
    void
    finish() const
    {
        if (traceFile.empty())
            return;
        std::ofstream f(traceFile);
        f << obs::Trace::global().json() << "\n";
    }
};

/** A self-contained simulated world for one measurement point. */
struct World
{
    explicit World(const mem::PlatformConfig &plat)
        : simv(), system(simv, plat), rng(7), sampler(simv)
    {
        sampler.start();
    }

    sim::Simulator simv;
    mem::CoherentSystem system;
    sim::Rng rng;
    /// Time-series snapshotter: every world feeds the process-wide
    /// sample ring under its own run id, so a bench's "timeseries"
    /// section separates measurement points.
    obs::Sampler sampler;
    std::unique_ptr<driver::NicInterface> nic;
    ccnic::CcNic *ccnic = nullptr;   // Set when the NIC is a CcNic.
    nic::PcieNic *pcie = nullptr;    // Set when the NIC is a PcieNic.
    pio::PioNic *pio = nullptr;      // Set when the NIC is a PioNic.
};

/**
 * Append the standard observability sections every bench emits:
 *
 *  - "counters": aggregated Registry snapshot (name, kind, value).
 *  - "latency": per-stage packet lifecycle latency percentiles from
 *    the sampled span table (paper Fig 7/11 stage decomposition).
 *  - "timeseries": interval snapshots of counter deltas / gauge
 *    changes recorded by each World's Sampler.
 */
inline void
addObsSections(stats::JsonReport &json)
{
    json.add("counters", obs::Registry::global().snapshot());
    json.add("latency", obs::SpanTable::global().table());
    json.add("timeseries", obs::Sampler::table());
}

/** Build a world with a CC-NIC (or variant) attached. */
inline std::unique_ptr<World>
makeCcNicWorld(const mem::PlatformConfig &plat,
               const ccnic::CcNicConfig &cfg, int host_socket = 0,
               int nic_socket = 1)
{
    auto w = std::make_unique<World>(plat);
    auto n = std::make_unique<ccnic::CcNic>(w->simv, w->system, cfg,
                                            host_socket, nic_socket,
                                            w->rng);
    w->ccnic = n.get();
    n->start();
    w->nic = std::move(n);
    return w;
}

/** Build a world with a PCIe NIC attached. */
inline std::unique_ptr<World>
makePcieWorld(const mem::PlatformConfig &plat,
              const nic::NicParams &params, int queues)
{
    auto w = std::make_unique<World>(plat);
    auto n = std::make_unique<nic::PcieNic>(w->simv, w->system, params,
                                            queues, 0, w->rng);
    w->pcie = n.get();
    n->start();
    w->nic = std::move(n);
    return w;
}

/** Build a world with a PIO message-register NIC attached. */
inline std::unique_ptr<World>
makePioWorld(const mem::PlatformConfig &plat, const pio::Config &cfg,
             int host_socket = 0, int nic_socket = 1)
{
    auto w = std::make_unique<World>(plat);
    auto n = std::make_unique<pio::PioNic>(w->simv, w->system, cfg,
                                           host_socket, nic_socket,
                                           w->rng);
    w->pio = n.get();
    n->start();
    w->nic = std::move(n);
    return w;
}

/**
 * One entry in the interface-family registry. `kind` names the
 * family's architecture (ring-over-coherence, ring-over-PCIe,
 * PIO-over-coherence) for docs and report labels.
 */
struct InterfaceFamily
{
    const char *key;   ///< Factory key (stable, used in baselines/CI).
    const char *label; ///< Human-readable series label.
    const char *kind;  ///< Architecture family.
};

/**
 * The interface families every comparison bench/example enumerates.
 * Adding an entry here (plus a worldFactory() case) wires a new
 * interface into bench_fig11_overview, bench_pio_smallmsg and
 * examples/interface_compare at once.
 */
inline const std::vector<InterfaceFamily> &
interfaceFamilies()
{
    static const std::vector<InterfaceFamily> families = {
        {"ccnic", "CC-NIC", "ring-over-coherence"},
        {"upi_unopt", "UPI-unopt", "ring-over-coherence"},
        {"pcie_e810", "PCIe-E810", "ring-over-PCIe"},
        {"pcie_cx6", "PCIe-CX6", "ring-over-PCIe"},
        {"pio", "PIO-UPI", "PIO-over-coherence"},
        {"pio_cxl", "PIO-CXL", "PIO-over-coherence"},
    };
    return families;
}

/** Display label for an interface-family key. */
inline const char *
familyLabel(const std::string &key)
{
    for (const InterfaceFamily &f : interfaceFamilies()) {
        if (key == f.key)
            return f.label;
    }
    return key.c_str();
}

/**
 * World factory for an interface-family key: every measurement point
 * gets a fresh deterministic world with that interface attached.
 * Throws on an unknown key so baseline/CI typos fail loudly.
 */
inline std::function<std::unique_ptr<World>()>
worldFactory(const std::string &key, const mem::PlatformConfig &plat,
             int queues)
{
    if (key == "ccnic") {
        return [plat, queues] {
            return makeCcNicWorld(
                plat, ccnic::optimizedConfig(queues, 0, plat));
        };
    }
    if (key == "upi_unopt") {
        return [plat, queues] {
            return makeCcNicWorld(
                plat, ccnic::unoptimizedConfig(queues, 0, plat));
        };
    }
    if (key == "pcie_e810") {
        return [plat, queues] {
            return makePcieWorld(plat, nic::e810Params(), queues);
        };
    }
    if (key == "pcie_cx6") {
        return [plat, queues] {
            return makePcieWorld(plat, nic::cx6Params(), queues);
        };
    }
    if (key == "pio") {
        return [plat, queues] {
            return makePioWorld(plat,
                                pio::upiConfig(queues, 0, plat));
        };
    }
    if (key == "pio_cxl") {
        return [plat, queues] {
            return makePioWorld(plat,
                                pio::cxlConfig(queues, 0, plat));
        };
    }
    throw std::invalid_argument("unknown interface family: " + key);
}

/** Run one loopback point in a fresh world built by @p factory. */
inline workload::LoopbackResult
runPoint(const std::function<std::unique_ptr<World>()> &factory,
         workload::LoopbackConfig cfg)
{
    auto w = factory();
    return workload::runLoopback(w->simv, w->system, *w->nic, cfg);
}

/**
 * Find the peak sustainable packet rate: sweep offered load on a
 * geometric grid around @p guess_pps and return the best achieved
 * rate (the paper's "maximum sustainable rate" methodology).
 */
inline workload::LoopbackResult
findPeak(const std::function<std::unique_ptr<World>()> &factory,
         workload::LoopbackConfig cfg, double guess_pps)
{
    workload::LoopbackResult best;
    for (double f : {0.8, 1.0, 1.3}) {
        cfg.offeredPps = guess_pps * f;
        auto r = runPoint(factory, cfg);
        if (r.achievedMpps > best.achievedMpps)
            best = r;
    }
    return best;
}

/** Measure the closed-loop (window=1) minimum latency. */
inline double
minLatencyNs(const std::function<std::unique_ptr<World>()> &factory,
             std::uint32_t pkt_size = 64)
{
    workload::LoopbackConfig cfg;
    cfg.threads = 1;
    cfg.pktSize = pkt_size;
    cfg.closedWindow = 1;
    cfg.window = sim::fromUs(250.0);
    auto r = runPoint(factory, cfg);
    return r.minNs;
}

/**
 * Trace a throughput-latency curve: open-loop rates up to slightly
 * past saturation. Returns (achievedMpps, medianNs) pairs.
 */
struct CurvePoint
{
    double offeredMpps, achievedMpps, medianNs, gbps;
};

inline std::vector<CurvePoint>
traceCurve(const std::function<std::unique_ptr<World>()> &factory,
           workload::LoopbackConfig cfg, double max_pps, int points = 7)
{
    std::vector<CurvePoint> out;
    for (int i = 1; i <= points; ++i) {
        const double frac =
            static_cast<double>(i) / static_cast<double>(points);
        cfg.offeredPps = max_pps * frac * frac; // Dense near the knee.
        auto r = runPoint(factory, cfg);
        out.push_back({r.offeredMpps, r.achievedMpps, r.medianNs,
                       r.gbps});
    }
    return out;
}

/** Latency at approximately the given fraction of peak load. */
inline double
latencyAtLoadNs(const std::function<std::unique_ptr<World>()> &factory,
                workload::LoopbackConfig cfg, double peak_pps,
                double fraction)
{
    cfg.offeredPps = peak_pps * fraction;
    auto r = runPoint(factory, cfg);
    return r.medianNs;
}

} // namespace ccn::bench

#endif // CCN_BENCH_COMMON_HH
