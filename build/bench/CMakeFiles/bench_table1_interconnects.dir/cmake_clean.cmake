file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_interconnects.dir/bench_table1_interconnects.cc.o"
  "CMakeFiles/bench_table1_interconnects.dir/bench_table1_interconnects.cc.o.d"
  "bench_table1_interconnects"
  "bench_table1_interconnects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_interconnects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
