file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_batching.dir/bench_fig16_batching.cc.o"
  "CMakeFiles/bench_fig16_batching.dir/bench_fig16_batching.cc.o.d"
  "bench_fig16_batching"
  "bench_fig16_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
