file(REMOVE_RECURSE
  "CMakeFiles/ccn_pcie.dir/pcie.cc.o"
  "CMakeFiles/ccn_pcie.dir/pcie.cc.o.d"
  "libccn_pcie.a"
  "libccn_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccn_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
