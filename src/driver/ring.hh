/**
 * @file
 * Descriptor ring layouts and register lines.
 *
 * The three layouts studied in §3.2 / Figure 14b:
 *  - Padded: one 16B descriptor per 64B cache line (no thrashing, 75%
 *    space wasted).
 *  - Packed: four 16B descriptors per line, each independently
 *    signaled (E810-equivalent layout; thrashes when producer and
 *    consumer touch the same line concurrently).
 *  - Grouped: CC-NIC's optimized layout — four descriptors plus one
 *    signal per line, written as a unit; a consumer that finds a blank
 *    descriptor mid-group skips to the next line.
 *
 * The ring stores logical slot contents in C++; the simulated lines
 * carry the coherence traffic.
 */

#ifndef CCN_DRIVER_RING_HH
#define CCN_DRIVER_RING_HH

#include <cstdint>
#include <vector>

#include "driver/packet.hh"
#include "mem/coherence.hh"

namespace ccn::driver {

/** Descriptor ring memory layout (§3.2). */
enum class RingLayout
{
    Padded,  ///< One descriptor per cache line.
    Packed,  ///< Four per line, per-descriptor signals.
    Grouped, ///< Four per line, one signal per line (CC-NIC).
};

/** Signaling mechanism (§3.2 / Figure 14a). */
enum class SignalMode
{
    Inline,   ///< Ready flag inlined in the descriptor line.
    Register, ///< Separate head/tail register lines (PCIe-style).
};

/**
 * A descriptor ring in simulated memory.
 */
class DescRing
{
  public:
    /** One logical descriptor slot. */
    struct Slot
    {
        PacketBuf *buf = nullptr;
        std::uint32_t len = 0;
        std::uint64_t meta = 0;
        bool ready = false; ///< Inline signal state.
    };

    /**
     * Round @p n up to the next power of two (minimum 1). Index
     * arithmetic masks with entries-1, so a non-power-of-two ring
     * would silently alias distinct slots onto the same storage.
     */
    static std::uint32_t
    roundUpPow2(std::uint32_t n)
    {
        if (n <= 1)
            return 1;
        --n;
        n |= n >> 1;
        n |= n >> 2;
        n |= n >> 4;
        n |= n >> 8;
        n |= n >> 16;
        return n + 1;
    }

    /**
     * @param mem_system  Memory system for ring storage.
     * @param home_socket Homing (§3.3: writer-homed is optimal).
     * @param entries     Ring size; rounded up to a power of two
     *                    (query entries() for the effective size).
     * @param layout      Cache-line layout.
     */
    DescRing(mem::CoherentSystem &mem_system, int home_socket,
             std::uint32_t entries, RingLayout layout)
        : layout_(layout), entries_(roundUpPow2(entries)),
          mask_(roundUpPow2(entries) - 1), slots_(roundUpPow2(entries))
    {
        entries = entries_;
        const std::uint32_t bytes_per_entry =
            layout == RingLayout::Padded ? mem::kLineBytes : 16;
        base_ = mem_system.alloc(
            home_socket,
            static_cast<std::uint64_t>(entries) * bytes_per_entry,
            mem::kLineBytes);
    }

    /** Descriptors per cache line under this layout. */
    std::uint32_t
    perLine() const
    {
        return layout_ == RingLayout::Padded ? 1 : 4;
    }

    /** Line address holding descriptor @p idx. */
    mem::Addr
    lineOf(std::uint32_t idx) const
    {
        const std::uint32_t i = idx & mask_;
        return layout_ == RingLayout::Padded
                   ? base_ + static_cast<std::uint64_t>(i) *
                                 mem::kLineBytes
                   : base_ + static_cast<std::uint64_t>(i / 4) *
                                 mem::kLineBytes;
    }

    /** Byte address of descriptor @p idx. */
    mem::Addr
    addrOf(std::uint32_t idx) const
    {
        const std::uint32_t i = idx & mask_;
        return layout_ == RingLayout::Padded
                   ? base_ + static_cast<std::uint64_t>(i) *
                                 mem::kLineBytes
                   : base_ + static_cast<std::uint64_t>(i) * 16;
    }

    Slot &slot(std::uint32_t idx) { return slots_[idx & mask_]; }
    const Slot &slot(std::uint32_t idx) const
    {
        return slots_[idx & mask_];
    }

    std::uint32_t entries() const { return entries_; }
    std::uint32_t mask() const { return mask_; }
    RingLayout layout() const { return layout_; }

    /** First index of the descriptor group containing @p idx. */
    std::uint32_t
    groupBase(std::uint32_t idx) const
    {
        return idx & ~(perLine() - 1);
    }

  private:
    RingLayout layout_;
    std::uint32_t entries_;
    std::uint32_t mask_;
    mem::Addr base_ = 0;
    std::vector<Slot> slots_;
};

/**
 * A 64-bit register on its own cache line (PCIe-style head/tail
 * signaling over coherent memory, the paper's "unoptimized" baseline).
 */
class RegisterLine
{
  public:
    RegisterLine(mem::CoherentSystem &mem_system, int home_socket)
        : addr_(mem_system.alloc(home_socket, mem::kLineBytes,
                                 mem::kLineBytes))
    {}

    mem::Addr addr() const { return addr_; }

    std::uint64_t value() const { return value_; }

    /** Publish a new value (call after the store completes). */
    void publish(std::uint64_t v) { value_ = v; }

  private:
    mem::Addr addr_;
    std::uint64_t value_ = 0;
};

} // namespace ccn::driver

#endif // CCN_DRIVER_RING_HH
