/**
 * @file
 * Figure 2 + §2.2 reproduction: single-threaded write throughput for
 * WC MMIO (to the NIC), WC-mapped DRAM, and regular WB DRAM, as a
 * function of bytes written per sfence barrier; plus the §2.2 UC MMIO
 * read latency measurements.
 */

#include <functional>

#include "bench/common.hh"
#include "pcie/pcie.hh"
#include "stats/json.hh"

using namespace ccn;

namespace {

sim::Task
body(std::function<sim::Coro<void>()> fn, bool &done)
{
    co_await fn();
    done = true;
}

double
wcThroughputGbps(pcie::WcTarget target, std::uint32_t bytes_per_barrier)
{
    sim::Simulator simv;
    mem::CoherentSystem system(simv, mem::icxConfig());
    pcie::PcieLink link(simv, pcie::PcieParams{}, system, 0);
    pcie::WcWindow wc(simv, link, target);
    double gbps = 0;
    bool done = false;
    auto fn = [&]() -> sim::Coro<void> {
        const std::uint64_t total = 2 * 1024 * 1024;
        const sim::Tick t0 = simv.now();
        std::uint64_t written = 0;
        mem::Addr a = 0x40000000;
        while (written < total) {
            for (std::uint32_t b = 0; b < bytes_per_barrier; b += 64) {
                co_await wc.store(a, 64);
                a += 64;
            }
            co_await wc.fence();
            written += bytes_per_barrier;
        }
        gbps = sim::bytesOverTicksToGbps(
            static_cast<double>(total), simv.now() - t0);
        co_return;
    };
    simv.spawn(body(fn, done));
    simv.run();
    return gbps;
}

double
wbThroughputGbps(std::uint32_t bytes_per_barrier)
{
    sim::Simulator simv;
    mem::CoherentSystem system(simv, mem::icxConfig());
    const mem::AgentId a = system.addAgent(0);
    double gbps = 0;
    bool done = false;
    auto fn = [&]() -> sim::Coro<void> {
        const std::uint64_t total = 2 * 1024 * 1024;
        mem::Addr base = system.alloc(0, total);
        const sim::Tick t0 = simv.now();
        // WB stores: sfence barriers cost nothing extra (Fig 2's flat
        // line), so throughput is barrier-independent.
        (void)bytes_per_barrier;
        co_await system.storeRange(a, base, total);
        gbps = sim::bytesOverTicksToGbps(
            static_cast<double>(total), simv.now() - t0);
        co_return;
    };
    simv.spawn(body(fn, done));
    simv.run();
    return gbps;
}

} // namespace

int
main()
{
    stats::JsonReport json("fig02_wc_throughput");
    stats::banner("Sec 2.2: UC MMIO read latency (ICX -> E810)");
    {
        sim::Simulator simv;
        mem::CoherentSystem system(simv, mem::icxConfig());
        pcie::PcieLink link(simv, pcie::PcieParams{}, system, 0);
        double lat8 = 0, lat64 = 0;
        bool done = false;
        auto fn = [&]() -> sim::Coro<void> {
            sim::Tick t0 = simv.now();
            co_await link.mmioUcRead(8);
            lat8 = sim::toNs(simv.now() - t0);
            t0 = simv.now();
            co_await link.mmioUcRead(64);
            lat64 = sim::toNs(simv.now() - t0);
            co_return;
        };
        simv.spawn(body(fn, done));
        simv.run();
        stats::Table t({"access", "measured_ns", "paper_ns"});
        t.row().cell("8B UC read").cell(lat8, 0).cell("982");
        t.row().cell("64B AVX512 read").cell(lat64, 0).cell("1026");
        t.print();
        json.add("uc_mmio_read_latency", t);
    }

    stats::banner("Figure 2: single-threaded write throughput [Gbps]");
    stats::Table t({"bytes/barrier", "WC_MMIO", "WC_DRAM", "WB_DRAM",
                    "paper_shape"});
    for (std::uint32_t sz : {64u, 128u, 256u, 512u, 1024u, 2048u,
                             4096u, 8192u}) {
        t.row()
            .cell(static_cast<std::uint64_t>(sz))
            .cell(wcThroughputGbps(pcie::WcTarget::Device, sz), 1)
            .cell(wcThroughputGbps(pcie::WcTarget::LocalDram, sz), 1)
            .cell(wbThroughputGbps(sz), 1)
            .cell(sz == 64
                      ? "WB flat ~100; WC MMIO tiny"
                      : (sz >= 4096 ? "WC MMIO ~76% of WB" : "-"));
    }
    t.print();
    json.add("write_throughput", t);
    ccn::bench::addObsSections(json);
    json.write();
    return 0;
}
