/**
 * @file
 * Unit tests for the stats package: histogram precision, percentiles,
 * merging, and table formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/random.hh"
#include "stats/histogram.hh"
#include "stats/json.hh"
#include "stats/table.hh"

namespace {

using ccn::stats::Histogram;
using ccn::stats::Table;

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.median(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SmallValuesExact)
{
    Histogram h;
    for (std::uint64_t v = 0; v < 64; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 64u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 63u);
    // Values below 64 land in exact buckets.
    EXPECT_EQ(h.percentile(100.0), 63u);
}

TEST(Histogram, PercentilePrecisionWithinBucketError)
{
    Histogram h;
    // Uniform 1..1'000'000.
    for (std::uint64_t v = 1; v <= 1000000; v += 37)
        h.record(v);
    const double tol = 0.02; // 64 sub-buckets => <1.6% quantization.
    EXPECT_NEAR(static_cast<double>(h.median()), 500000.0,
                500000.0 * tol + 1);
    EXPECT_NEAR(static_cast<double>(h.percentile(99.0)), 990000.0,
                990000.0 * tol + 1);
    EXPECT_NEAR(h.mean(), 500000.0, 1000.0);
}

TEST(Histogram, RecordNActsLikeRepeats)
{
    Histogram a, b;
    a.recordN(1000, 5);
    for (int i = 0; i < 5; ++i)
        b.record(1000);
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.median(), b.median());
    EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

TEST(Histogram, RecordNZeroCountIsANoOp)
{
    Histogram h;
    h.record(500);
    h.recordN(7, 0); // Must not touch min/max/sum/count.
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 500u);
    EXPECT_EQ(h.max(), 500u);
    EXPECT_DOUBLE_EQ(h.mean(), 500.0);

    Histogram empty;
    empty.recordN(123456, 0);
    EXPECT_EQ(empty.count(), 0u);
    EXPECT_EQ(empty.min(), 0u);
    EXPECT_EQ(empty.max(), 0u);
}

TEST(Histogram, MergeCombinesSamples)
{
    Histogram a, b;
    for (int i = 0; i < 1000; ++i)
        a.record(100);
    for (int i = 0; i < 1000; ++i)
        b.record(10000);
    a.merge(b);
    EXPECT_EQ(a.count(), 2000u);
    EXPECT_EQ(a.min(), 100u);
    EXPECT_GE(a.max(), 10000u);
    // Median falls on the boundary between the two populations.
    EXPECT_NEAR(static_cast<double>(a.percentile(25.0)), 100.0, 4.0);
    EXPECT_NEAR(static_cast<double>(a.percentile(75.0)), 10000.0, 200.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.record(42);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, LargeValuesBounded)
{
    Histogram h;
    const std::uint64_t big = ~std::uint64_t{0} - 3;
    h.record(big);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.max(), big);
    // Bucketized percentile is within one bucket of the value.
    EXPECT_GE(h.percentile(50.0), big / 2 - big / 64);
}

// Regression: percentile() used to return the representative of
// whatever bucket the rank landed in, so p=100 on a single-sample
// histogram could report a bucket midpoint above the only recorded
// value, and p=0 skipped past min() into the first occupied bucket's
// midpoint. The boundary semantics are now pinned: empty -> 0 for
// every p, p<=0 -> min(), p>=100 -> max(), and interior percentiles
// are clamped into the observed [min, max] range. The fig16 bench's
// p0/p100 span columns rely on these being exact.
TEST(Histogram, PercentileBoundarySemantics)
{
    Histogram empty;
    for (double p : {0.0, 50.0, 100.0})
        EXPECT_EQ(empty.percentile(p), 0u);

    Histogram one;
    one.record(1000003); // Not a bucket boundary: midpoint != value.
    EXPECT_EQ(one.percentile(0.0), 1000003u);
    EXPECT_EQ(one.percentile(50.0), 1000003u);
    EXPECT_EQ(one.percentile(100.0), 1000003u);
    // Out-of-range p clamps to the boundaries rather than misbehaving.
    EXPECT_EQ(one.percentile(-5.0), 1000003u);
    EXPECT_EQ(one.percentile(250.0), 1000003u);

    Histogram two;
    two.record(100);
    two.record(900000);
    EXPECT_EQ(two.percentile(0.0), 100u);
    EXPECT_EQ(two.percentile(100.0), 900000u);
    // Every interior percentile stays inside the observed range.
    for (double p : {1.0, 25.0, 50.0, 75.0, 99.0}) {
        EXPECT_GE(two.percentile(p), 100u) << p;
        EXPECT_LE(two.percentile(p), 900000u) << p;
    }
}

TEST(Histogram, RandomStreamPercentilesMonotone)
{
    Histogram h;
    ccn::sim::Rng rng(5);
    for (int i = 0; i < 100000; ++i)
        h.record(rng.below(1u << 20));
    std::uint64_t prev = 0;
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
        std::uint64_t v = h.percentile(p);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(Table, AlignsAndPrints)
{
    Table t({"series", "x", "measured", "paper"});
    t.row().cell("CC-NIC").cell(64).cell(1.5, 1).cell("1.5");
    t.row().cell("E810").cell(1500).cell(200.25, 2).cell("200");
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("series"), std::string::npos);
    EXPECT_NE(out.find("CC-NIC"), std::string::npos);
    EXPECT_NE(out.find("200.25"), std::string::npos);
    // Header line plus separator plus two rows.
    int newlines = 0;
    for (char ch : out)
        newlines += ch == '\n';
    EXPECT_EQ(newlines, 4);
}

TEST(Json, NumericCellsStayBare)
{
    using ccn::stats::jsonCell;
    EXPECT_EQ(jsonCell("0"), "0");
    EXPECT_EQ(jsonCell("-17"), "-17");
    EXPECT_EQ(jsonCell("3.25"), "3.25");
    EXPECT_EQ(jsonCell("1e10"), "1e10");
    EXPECT_EQ(jsonCell("2.5E-3"), "2.5E-3");
}

// Regression: strtod accepts "inf"/"nan" (and friends), which a bench
// produces for e.g. a rate over a zero-length interval; emitting them
// bare yields invalid JSON that chokes every downstream parser.
TEST(Json, NonFiniteCellsAreQuoted)
{
    using ccn::stats::jsonCell;
    EXPECT_EQ(jsonCell("inf"), "\"inf\"");
    EXPECT_EQ(jsonCell("-inf"), "\"-inf\"");
    EXPECT_EQ(jsonCell("Inf"), "\"Inf\"");
    EXPECT_EQ(jsonCell("infinity"), "\"infinity\"");
    EXPECT_EQ(jsonCell("nan"), "\"nan\"");
    EXPECT_EQ(jsonCell("-nan"), "\"-nan\"");
    EXPECT_EQ(jsonCell("NaN"), "\"NaN\"");
}

// "1e999" is valid JSON *grammar* but overflows double in every
// consumer (Python json turns it into Infinity); quote it. Hex floats
// and leading '+' are strtod-isms that are not JSON at all.
TEST(Json, OverflowAndStrtodExtensionsAreQuoted)
{
    using ccn::stats::jsonCell;
    EXPECT_EQ(jsonCell("1e999"), "\"1e999\"");
    EXPECT_EQ(jsonCell("-1e999"), "\"-1e999\"");
    EXPECT_EQ(jsonCell("0x1p3"), "\"0x1p3\"");
    EXPECT_EQ(jsonCell("0x10"), "\"0x10\"");
    EXPECT_EQ(jsonCell("+5"), "\"+5\"");
    EXPECT_EQ(jsonCell(".5"), "\".5\"");
    EXPECT_EQ(jsonCell("5."), "\"5.\"");
    EXPECT_EQ(jsonCell(""), "\"\"");
}

// End-to-end repro: a table containing an inf cell must still render
// a report that is machine-parsable (the cell arrives as a string).
TEST(Json, ReportWithInfCellIsStillValidJson)
{
    Table t({"series", "rate"});
    t.row().cell("broken").cell("inf");
    t.row().cell("fine").cell(42.0, 1);
    ccn::stats::JsonReport rep("selftest");
    rep.add("numbers", t);
    const std::string s = rep.str();
    EXPECT_NE(s.find("\"rate\": \"inf\""), std::string::npos);
    EXPECT_NE(s.find("\"rate\": 42.0"), std::string::npos);
    // No bare inf token may survive anywhere in the document.
    for (std::size_t pos = s.find("inf"); pos != std::string::npos;
         pos = s.find("inf", pos + 1)) {
        ASSERT_GT(pos, 0u);
        EXPECT_EQ(s[pos - 1], '"');
    }
}

} // namespace
