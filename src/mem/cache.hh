/**
 * @file
 * Set-associative cache tag model.
 *
 * Tracks presence, local MESI-style state, dirtiness, LRU age, and the
 * fill-complete time (readyAt) of 64B lines. Used for per-core private
 * L2 caches and per-socket shared LLCs. Only tags and states are
 * modeled; data contents live in the access-accurate layer above.
 */

#ifndef CCN_MEM_CACHE_HH
#define CCN_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/addr.hh"
#include "sim/time.hh"

namespace ccn::mem {

/** Local state of a line within one cache. */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,    ///< Read-only copy (S or F).
    Exclusive, ///< Sole clean copy (E).
    Modified,  ///< Sole dirty copy (M).
};

/** One cache way. */
struct CacheEntry
{
    Addr line = 0;
    LineState state = LineState::Invalid;
    bool dirty = false;
    sim::Tick readyAt = 0; ///< Fill completion (for prefetch hits).
    bool wasPrefetch = false; ///< Installed by the prefetcher.
    std::uint64_t lruStamp = 0;

    bool valid() const { return state != LineState::Invalid; }
};

/** Victim description returned by insert(). */
struct Eviction
{
    bool valid = false;
    Addr line = 0;
    LineState state = LineState::Invalid;
    bool dirty = false;
};

/**
 * Set-associative LRU cache of 64B line tags.
 */
class SetAssocCache
{
  public:
    /**
     * @param total_lines Capacity in lines; rounded down to a multiple
     *                    of @p ways.
     * @param ways        Associativity.
     */
    SetAssocCache(std::uint32_t total_lines, std::uint32_t ways);

    /** Find the entry for @p line, or nullptr. Does not touch LRU. */
    CacheEntry *find(Addr line);
    const CacheEntry *find(Addr line) const;

    /** Find and mark most-recently-used. */
    CacheEntry *touch(Addr line);

    /**
     * Insert @p line (which must not be present), evicting the LRU way
     * of its set if necessary. Returns the inserted entry; the evicted
     * victim, if any, is described through @p evicted.
     */
    CacheEntry *insert(Addr line, LineState state, bool dirty,
                       Eviction *evicted);

    /** Remove @p line if present; returns true if it was. */
    bool erase(Addr line);

    /** Drop every line (used between experiment repetitions). */
    void clear();

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t ways() const { return ways_; }

    /** Number of valid entries (O(capacity); for tests). */
    std::uint64_t countValid() const;

  private:
    std::uint32_t setIndex(Addr line) const;

    std::uint32_t numSets_;
    std::uint32_t ways_;
    std::uint64_t stamp_ = 0;
    std::vector<CacheEntry> entries_; // numSets_ x ways_.
};

} // namespace ccn::mem

#endif // CCN_MEM_CACHE_HH
