/**
 * @file
 * Example: the paper's §6 "Network Function Workloads" discussion as a
 * runnable three-host chain. A source host streams 1.5KB packets
 * through the fabric to a middlebox host, which inspects them and
 * forwards to a sink host. A packet-switching middlebox only inspects
 * headers; over a coherent NIC the payload can stay in the NIC-side
 * cache, so the middlebox host's interconnect carries only the header
 * lines. The chain runs twice — once touching the full payload at the
 * middlebox, once header-only — and reports the interconnect bytes
 * moved per forwarded packet, plus end-to-end delivery at the sink.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "ccnic/ccnic.hh"
#include "mem/platform.hh"
#include "net/fabric.hh"

using namespace ccn;

namespace {

constexpr std::uint32_t kPktLen = 1500;

/** One simulated machine: memory system + started CC-NIC. */
struct Host
{
    Host(sim::Simulator &sim, const mem::PlatformConfig &plat,
         std::uint64_t seed)
        : system(sim, plat), rng(seed)
    {
        auto cfg = ccnic::optimizedConfig(1, 0, plat);
        cfg.loopback = false;
        nic = std::make_unique<ccnic::CcNic>(sim, system, cfg, 0, 1,
                                             rng);
        nic->start();
    }

    mem::CoherentSystem system;
    sim::Rng rng;
    std::unique_ptr<ccnic::CcNic> nic;
};

struct Result
{
    double forwarded = 0;
    double delivered = 0;
    double upiBytesPerPkt = 0;
};

/** Source host: transmit 1Mpps of 1.5KB packets to the middlebox. */
sim::Task
sourceTask(sim::Simulator &simv, mem::CoherentSystem &m,
           ccnic::CcNic &nic, std::uint32_t mbx_addr)
{
    const int q = 0;
    const mem::AgentId agent = nic.hostAgent(q);
    for (int i = 0; i < 300; ++i) {
        driver::PacketBuf *buf = nullptr;
        if (co_await nic.allocBufs(q, kPktLen, &buf, 1) == 1) {
            buf->len = kPktLen;
            buf->txTime = simv.now();
            buf->flowId = static_cast<std::uint64_t>(i);
            buf->userData = static_cast<std::uint64_t>(i);
            buf->dst = mbx_addr;
            buf->src = 0;
            std::vector<mem::CoherentSystem::Span> span{
                {buf->addr, buf->len}};
            co_await m.postMulti(agent, span, nullptr);
            if (co_await nic.txBurst(q, &buf, 1) != 1)
                co_await nic.freeBufs(q, &buf, 1);
        }
        co_await simv.delay(sim::fromUs(1.0));
    }
}

/** Middlebox host: inspect and forward to the sink. */
sim::Task
middleboxTask(sim::Simulator &simv, mem::CoherentSystem &m,
              ccnic::CcNic &nic, std::uint32_t sink_addr,
              bool header_only, Result *out)
{
    const int q = 0;
    const mem::AgentId agent = nic.hostAgent(q);
    driver::PacketBuf *rx[32];
    const sim::Tick end = simv.now() + sim::fromUs(400.0);
    std::uint64_t forwarded = 0;
    m.resetStats();
    const std::uint64_t upi0 = m.upiBytesInto(0) + m.upiBytesInto(1);

    while (simv.now() < end) {
        int nr = co_await nic.rxBurst(q, rx, 32);
        if (nr > 0) {
            // The middlebox decision: headers only vs full payload.
            std::vector<mem::CoherentSystem::Span> spans;
            for (int i = 0; i < nr; ++i) {
                spans.push_back({rx[i]->addr,
                                 header_only ? 64u : rx[i]->len});
                rx[i]->dst = sink_addr;
                rx[i]->src = 0; // Restamped as the middlebox port.
            }
            co_await m.accessMulti(agent, spans, false);
            // Forward: resubmit the same buffers to TX (the paper
            // notes applications may submit RX buffers to TX queues).
            int sent = 0;
            while (sent < nr) {
                int tx = co_await nic.txBurst(q, rx + sent, nr - sent);
                if (tx == 0)
                    co_await simv.delay(sim::fromNs(200.0));
                sent += tx;
            }
            forwarded += static_cast<std::uint64_t>(nr);
        } else {
            co_await nic.idleWait(q, std::min(end, simv.now() +
                                                       sim::fromUs(5)));
        }
    }
    out->forwarded = static_cast<double>(forwarded);
    out->upiBytesPerPkt =
        forwarded ? static_cast<double>(m.upiBytesInto(0) +
                                        m.upiBytesInto(1) - upi0) /
                        static_cast<double>(forwarded)
                  : 0.0;
    co_return;
}

/** Sink host: receive, count, release. */
sim::Task
sinkTask(sim::Simulator &simv, ccnic::CcNic &nic, Result *out)
{
    const int q = 0;
    driver::PacketBuf *rx[32];
    const sim::Tick end = simv.now() + sim::fromUs(450.0);
    std::uint64_t recvd = 0;
    while (simv.now() < end) {
        int nr = co_await nic.rxBurst(q, rx, 32);
        if (nr > 0) {
            recvd += static_cast<std::uint64_t>(nr);
            co_await nic.freeBufs(q, rx, nr);
        } else {
            co_await nic.idleWait(q, end);
        }
    }
    out->delivered = static_cast<double>(recvd);
    co_return;
}

Result
run(bool header_only, bool print_fabric)
{
    sim::Simulator simv;
    const auto plat = mem::icxConfig();
    Host source(simv, plat, 2);
    Host mbx(simv, plat, 3);
    Host sink(simv, plat, 4);

    net::Fabric fabric(simv);
    net::LinkConfig link; // 100GbE defaults.
    const std::uint32_t mbx_addr =
        fabric.attach("middlebox", net::hooksFor(*mbx.nic), link);
    const std::uint32_t sink_addr =
        fabric.attach("sink", net::hooksFor(*sink.nic), link);
    fabric.attach("source", net::hooksFor(*source.nic), link);

    Result r;
    simv.spawn(sourceTask(simv, source.system, *source.nic, mbx_addr));
    simv.spawn(middleboxTask(simv, mbx.system, *mbx.nic, sink_addr,
                             header_only, &r));
    simv.spawn(sinkTask(simv, *sink.nic, &r));
    simv.run(sim::fromUs(600.0));
    if (print_fabric)
        fabric.report(std::cout);
    return r;
}

} // namespace

int
main()
{
    const Result full = run(false, false);
    const Result hdr = run(true, true);
    std::printf("1.5KB source -> middlebox -> sink chain over the "
                "fabric (ICX, CC-NICs):\n");
    std::printf("  full-payload access: %5.0f fwd, %5.0f delivered, "
                "%6.0f UPI bytes/pkt\n",
                full.forwarded, full.delivered, full.upiBytesPerPkt);
    std::printf("  header-only access:  %5.0f fwd, %5.0f delivered, "
                "%6.0f UPI bytes/pkt\n",
                hdr.forwarded, hdr.delivered, hdr.upiBytesPerPkt);
    std::printf("Header-only switching moves %.1fx fewer bytes across "
                "the middlebox's\ninterconnect (the paper's Sec 6 "
                "argument: a coherent NIC can retain payloads\nin its "
                "cache while the host touches only headers).\n",
                full.upiBytesPerPkt / std::max(1.0, hdr.upiBytesPerPkt));
    return 0;
}
