# Empty dependencies file for ccn_mem.
# This may be replaced when dependencies are built.
