#include "scenario/lexer.hh"

#include <cctype>
#include <cstdlib>

namespace ccn::scenario {

std::string
Token::describe() const
{
    switch (kind) {
      case TokKind::Ident: return "'" + text + "'";
      case TokKind::Number: return "number '" + text + "'";
      case TokKind::String: return "string \"" + text + "\"";
      case TokKind::LBrace: return "'{'";
      case TokKind::RBrace: return "'}'";
      case TokKind::Semi: return "';'";
      case TokKind::End: return "end of input";
    }
    return "?";
}

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

std::vector<Token>
lex(const std::string &file, const std::string &source)
{
    std::vector<Token> out;
    int line = 1, col = 1;
    std::size_t i = 0;
    const std::size_t n = source.size();

    const auto advance = [&](std::size_t k) {
        for (std::size_t j = 0; j < k; ++j, ++i) {
            if (source[i] == '\n') {
                line++;
                col = 1;
            } else {
                col++;
            }
        }
    };

    while (i < n) {
        const char c = source[i];
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance(1);
            continue;
        }
        if (c == '#') { // Comment to end of line.
            while (i < n && source[i] != '\n')
                advance(1);
            continue;
        }

        Token t;
        t.line = line;
        t.col = col;

        if (c == '{' || c == '}' || c == ';') {
            t.kind = c == '{' ? TokKind::LBrace
                     : c == '}' ? TokKind::RBrace
                                : TokKind::Semi;
            t.text = c;
            advance(1);
            out.push_back(t);
            continue;
        }

        if (c == '"') {
            advance(1);
            std::string v;
            while (i < n && source[i] != '"' && source[i] != '\n') {
                v += source[i];
                advance(1);
            }
            if (i >= n || source[i] != '"') {
                throw ScenarioError(file, t.line, t.col,
                                    "unterminated string literal");
            }
            advance(1);
            t.kind = TokKind::String;
            t.text = v;
            out.push_back(t);
            continue;
        }

        if (identStart(c)) {
            std::string v;
            while (i < n && identCont(source[i])) {
                v += source[i];
                advance(1);
            }
            t.kind = TokKind::Ident;
            t.text = v;
            out.push_back(t);
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
            c == '+' || c == '.') {
            std::string v;
            // 0x-hex (seeds) or decimal/scientific.
            const bool hex = c == '0' && i + 1 < n &&
                             (source[i + 1] == 'x' ||
                              source[i + 1] == 'X');
            if (hex) {
                v += source[i];
                v += source[i + 1];
                advance(2);
                while (i < n &&
                       std::isxdigit(
                           static_cast<unsigned char>(source[i]))) {
                    v += source[i];
                    advance(1);
                }
                if (v.size() == 2) {
                    throw ScenarioError(file, t.line, t.col,
                                        "malformed hex literal '" + v +
                                            "'");
                }
                t.number = static_cast<double>(
                    std::strtoull(v.c_str() + 2, nullptr, 16));
            } else {
                while (i < n &&
                       (std::isdigit(static_cast<unsigned char>(
                            source[i])) ||
                        source[i] == '.' || source[i] == '-' ||
                        source[i] == '+' || source[i] == 'e' ||
                        source[i] == 'E')) {
                    // Sign characters only lead or follow an exponent.
                    if ((source[i] == '-' || source[i] == '+') &&
                        !v.empty() && v.back() != 'e' &&
                        v.back() != 'E')
                        break;
                    v += source[i];
                    advance(1);
                }
                char *end = nullptr;
                t.number = std::strtod(v.c_str(), &end);
                if (v.empty() || end != v.c_str() + v.size()) {
                    throw ScenarioError(file, t.line, t.col,
                                        "malformed number '" + v +
                                            "'");
                }
            }
            t.kind = TokKind::Number;
            t.text = v;
            out.push_back(t);
            continue;
        }

        throw ScenarioError(file, line, col,
                            std::string("unexpected character '") + c +
                                "'");
    }

    Token end;
    end.kind = TokKind::End;
    end.line = line;
    end.col = col;
    out.push_back(end);
    return out;
}

} // namespace ccn::scenario
