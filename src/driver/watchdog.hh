/**
 * @file
 * Host-side NIC liveness watchdog.
 *
 * Detection uses the same coherent-signaling discipline as the data
 * plane: liveness is a per-direction heartbeat cache line (host bumps
 * one, the device bumps the other) read with plain loads, so a healthy
 * check costs two line transfers — no doorbells, no interrupts. The
 * watchdog declares failure on either of two signals:
 *
 *  - Missed heartbeats: the device beat value has not advanced for
 *    `missedBeats` consecutive checks.
 *  - Ring stall: a queue's txCompleted count has not advanced for
 *    `stallChecks` consecutive checks while descriptors are
 *    outstanding (head parked with work pending).
 *
 * On failure it runs the device lifecycle — quiesce(), reset(),
 * reinit() — and records the recovery latency. Callbacks let the
 * transport pause retransmission timers across the outage
 * (Endpoint::deviceResetBegin/Complete).
 */

#ifndef CCN_DRIVER_WATCHDOG_HH
#define CCN_DRIVER_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "driver/nic_iface.hh"
#include "obs/obs.hh"
#include "sim/simulator.hh"
#include "sim/time.hh"
#include "stats/histogram.hh"

namespace ccn::driver {

/** Why the watchdog declared the device failed. */
enum class FailureKind : std::uint8_t
{
    MissedHeartbeat, ///< Device beat line stopped advancing.
    RingStall,       ///< TX head parked with descriptors outstanding.
};

/** Watchdog tuning knobs. */
struct WatchdogConfig
{
    sim::Tick checkInterval = sim::fromUs(5.0); ///< Poll period.
    int missedBeats = 3;  ///< Silent checks before declaring failure.
    int stallChecks = 4;  ///< Stalled checks before declaring failure.
    bool autoRecover = true; ///< Run quiesce/reset/reinit on failure.
};

/** Registry-backed watchdog counters ("watchdog.*"). */
struct WatchdogStats
{
    obs::Counter checks{"watchdog.checks"};
    obs::Counter missedBeats{"watchdog.missed_beats"};
    obs::Counter ringStalls{"watchdog.ring_stalls"};
    obs::Counter failures{"watchdog.failures"};
    obs::Counter recoveries{"watchdog.recoveries"};
};

/**
 * Periodic liveness monitor and recovery driver for one NIC.
 */
class Watchdog
{
  public:
    Watchdog(sim::Simulator &sim, NicInterface &nic,
             const WatchdogConfig &config = {});

    /** Spawn the monitor task; it exits once sim time reaches
     *  @p run_until. */
    void start(sim::Tick run_until);

    /**
     * Run one full recovery cycle (quiesce/reset/reinit) immediately,
     * independent of detection. Also used internally on detection.
     */
    sim::Coro<void> recover();

    /** Invoked when a failure is declared (before any recovery). */
    void onFailure(std::function<void(FailureKind)> cb)
    {
        failureCb_ = std::move(cb);
    }

    /** Invoked after a recovery completes, with its latency. */
    void onRecovered(std::function<void(sim::Tick)> cb)
    {
        recoveredCb_ = std::move(cb);
    }

    const WatchdogStats &stats() const { return stats_; }

    /** Latency of each completed recovery, in ticks. */
    const stats::Histogram &recoveryLatency() const
    {
        return recoveryTicks_;
    }

    bool recovering() const { return recovering_; }

  private:
    sim::Task monitorTask();

    sim::Simulator &sim_;
    NicInterface &nic_;
    WatchdogConfig cfg_;
    WatchdogStats stats_;
    stats::Histogram recoveryTicks_;

    sim::Tick runUntil_ = 0;
    bool recovering_ = false;
    std::uint64_t lastBeat_ = 0;
    int silentChecks_ = 0;
    std::vector<std::uint64_t> lastCompleted_;
    std::vector<int> stalledChecks_;

    std::function<void(FailureKind)> failureCb_;
    std::function<void(sim::Tick)> recoveredCb_;
};

} // namespace ccn::driver

#endif // CCN_DRIVER_WATCHDOG_HH
