/**
 * @file
 * CliqueMap-style key-value store server (§5.7).
 *
 * Server threads poll NIC RX queues and handle GET/SET RPCs against a
 * hash index in simulated memory. GETs are zero-copy: the response is
 * a header buffer with the object payload attached as a second
 * segment (the DPDK extbuf pattern), so each TX descriptor carries two
 * buffer addresses. Clients live on the far side of a rate-capped wire
 * model standing in for the CX6's 2x100GbE ports.
 */

#ifndef CCN_APPS_KVSTORE_HH
#define CCN_APPS_KVSTORE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "ccnic/ccnic.hh"
#include "driver/nic_iface.hh"
#include "mem/coherence.hh"
#include "sim/random.hh"
#include "transport/transport.hh"
#include "workload/dists.hh"

namespace ccn::apps {

/** Rate-capped full-duplex wire (the CX6 2x100GbE stand-in). */
class WireModel
{
  public:
    WireModel(sim::Simulator &sim, double pps_cap, double bytes_per_sec)
        : pps(sim, pps_cap), bytes(sim, bytes_per_sec)
    {}

    /**
     * Admit one packet; returns its wire-exit time. Multi-segment
     * packets consume one descriptor/WQE slot per segment (§5.7: the
     * extbuf GET path stresses the NIC's descriptor rate).
     */
    sim::Tick
    admit(std::uint32_t len, std::uint32_t segments = 1)
    {
        const sim::Tick a = pps.reserve(segments);
        const sim::Tick b = bytes.reserve(len);
        return std::max(a, b);
    }

    sim::CalendarResource pps;
    sim::CalendarResource bytes;
};

/** KV store configuration. */
struct KvConfig
{
    std::uint64_t numObjects = 1u << 20;
    double zipf = 0.75;
    double getFraction = 0.95;
    workload::SizeDist sizes = workload::SizeDist::ads();
    int serverThreads = 8;
    double offeredOps = 100e6; ///< Client offered load (beyond peak).
    std::uint32_t requestBytes = 64;
    std::uint32_t headerBytes = 32;
    sim::Tick warmup = sim::fromUs(50.0);
    sim::Tick window = sim::fromUs(200.0);
    double parseCycles = 200; ///< Request parse + RPC dispatch.
    double indexCycles = 80;  ///< Hash + bucket walk computation.
    std::uint64_t seed = 11;
};

/** Result of one KV measurement point. */
struct KvResult
{
    double mopsPerSec = 0;
    double gbpsOut = 0;
    std::uint64_t served = 0;
};

/**
 * Reusable KV server: owns the hash index and object store in
 * simulated memory and spawns polling server threads against any
 * NicInterface. Responses are addressed back to the requester
 * (dst = request src), so the same server runs unchanged behind the
 * loopback measurement harness (runKvStore) and a network fabric
 * (workload/clientserver).
 */
class KvServer
{
  public:
    KvServer(mem::CoherentSystem &m, const KvConfig &cfg, sim::Rng &rng);
    ~KvServer();

    /**
     * Spawn cfg.serverThreads polling threads on queues
     * [0, serverThreads); they exit once @p run_until passes.
     */
    void start(sim::Simulator &sim, mem::CoherentSystem &m,
               driver::NicInterface &nic, sim::Tick run_until);

    /**
     * Serve GET/SET RPCs over the reliable transport instead of raw
     * bursts: every accepted connection gets a serving process that
     * loops recv → parse → index lookup → object access → send. The
     * response echoes the request's userData and original txTime (for
     * end-to-end RTT at the client); a GET response carries
     * headerBytes + object size, a SET response just the header.
     * Install before the endpoint sees its first SYN; @p ep must
     * outlive the run.
     */
    void startOverTransport(sim::Simulator &sim,
                            mem::CoherentSystem &m,
                            transport::Endpoint &ep,
                            sim::Tick run_until);

    struct State;
    State &state() { return *st_; }

    /** Shared handle, for harnesses whose tasks outlive this scope. */
    std::shared_ptr<State> shared() const { return st_; }

  private:
    std::shared_ptr<State> st_;
    KvConfig cfg_;
};

/**
 * Run the KV server on @p nic (already started, external wire mode
 * will be configured by this harness) and measure peak served
 * throughput.
 *
 * @param inject Function injecting a request packet into server queue
 *               q (the NIC's RX path).
 */
KvResult runKvStore(sim::Simulator &sim, mem::CoherentSystem &mem_system,
                    driver::NicInterface &nic,
                    std::function<void(int, const ccnic::WirePacket &)>
                        inject,
                    std::function<void(
                        std::function<void(int,
                                           const ccnic::WirePacket &)>)>
                        set_tx_sink,
                    WireModel &wire, const KvConfig &cfg);

} // namespace ccn::apps

#endif // CCN_APPS_KVSTORE_HH
