/**
 * @file
 * Common host-side NIC data plane interface.
 *
 * All four evaluated interfaces (CC-NIC, unoptimized UPI, E810 PCIe,
 * CX6 PCIe) implement this API, which mirrors the semantics of the
 * DPDK mempool and ethdev burst calls (paper Figure 5). Workloads and
 * applications are written once against it.
 */

#ifndef CCN_DRIVER_NIC_IFACE_HH
#define CCN_DRIVER_NIC_IFACE_HH

#include <cstdint>

#include "driver/packet.hh"
#include "mem/coherence.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace ccn::driver {

/**
 * Host CPU cost model for driver software (cycles). These represent
 * the instruction-execution component of per-packet work; memory
 * stalls are charged separately by the access-accurate memory model.
 */
struct CpuCosts
{
    double perLoop = 30;      ///< Poll-loop iteration overhead.
    double perPktTx = 35;     ///< Per-packet TX software cost.
    double perPktRx = 30;     ///< Per-packet RX software cost.
    double perDesc = 10;      ///< Descriptor marshalling.
    double perAllocFree = 10; ///< Buffer bookkeeping.
};

/**
 * Host-side per-queue data plane interface (DPDK ethdev/mempool
 * semantics).
 */
class NicInterface
{
  public:
    virtual ~NicInterface() = default;

    /**
     * Submit up to @p count packets on queue @p q. Returns the number
     * accepted (backpressure drops the rest, mirroring
     * rte_eth_tx_burst).
     */
    virtual sim::Coro<int> txBurst(int q, PacketBuf **bufs,
                                   int count) = 0;

    /**
     * Receive up to @p count packets from queue @p q. Returns the
     * number received (possibly 0; non-blocking poll).
     */
    virtual sim::Coro<int> rxBurst(int q, PacketBuf **bufs,
                                   int count) = 0;

    /** Allocate packet buffers suited to @p size bytes. */
    virtual sim::Coro<int> allocBufs(int q, std::uint32_t size,
                                     PacketBuf **bufs, int count) = 0;

    /** Release packet buffers. */
    virtual sim::Coro<void> freeBufs(int q, PacketBuf **bufs,
                                     int count) = 0;

    /**
     * Block until new RX work is likely (or @p deadline passes).
     * Used by poll loops to sleep without missing either timed TX
     * work or RX arrivals.
     */
    virtual sim::Coro<void> idleWait(int q, sim::Tick deadline) = 0;

    /** Agent (core) bound to queue @p q's host thread. */
    virtual mem::AgentId hostAgent(int q) const = 0;

    /** Number of configured queue pairs. */
    virtual int numQueues() const = 0;

    /** Host CPU cost model for this driver. */
    virtual const CpuCosts &cpuCosts() const = 0;
};

} // namespace ccn::driver

#endif // CCN_DRIVER_NIC_IFACE_HH
