#include "workload/chaos.hh"

#include <algorithm>

#include "obs/trace.hh"

namespace ccn::workload {

using sim::Tick;

ChaosSchedule::ChaosSchedule(sim::Simulator &sim,
                             const ChaosConfig &cfg, ChaosHooks hooks)
    : sim_(sim), cfg_(cfg), hooks_(std::move(hooks))
{
    sim::Rng rng(cfg_.seed);
    const Tick span =
        cfg_.end > cfg_.start ? cfg_.end - cfg_.start : 0;

    // Each class gets evenly spaced slots across the window; seeded
    // jitter moves an event within its slot so classes interleave
    // differently per seed but never bunch at the window edges.
    const auto place = [&](int n, ChaosKind kind) {
        for (int i = 0; i < n; ++i) {
            const double denom = static_cast<double>(n);
            double frac = (static_cast<double>(i) + 0.5) / denom +
                          (rng.uniform() - 0.5) * 0.6 / denom;
            frac = std::clamp(frac, 0.0, 1.0);
            events_.push_back(
                {cfg_.start +
                     static_cast<Tick>(frac *
                                       static_cast<double>(span)),
                 kind});
        }
    };
    place(cfg_.nicWedges, ChaosKind::NicWedge);
    place(cfg_.linkFlaps, ChaosKind::LinkFlap);
    place(cfg_.lossBursts, ChaosKind::LossBurst);
    std::sort(events_.begin(), events_.end(),
              [](const Event &a, const Event &b) {
                  return a.at < b.at;
              });
}

void
ChaosSchedule::arm(Tick run_until)
{
    sim_.spawn(replayTask(run_until));
}

void
ChaosSchedule::noteRecovered()
{
    if (lastWedgeAt_ == 0)
        return;
    recoveryTicks_.record(sim_.now() - lastWedgeAt_);
    lastWedgeAt_ = 0;
}

sim::Task
ChaosSchedule::replayTask(Tick run_until)
{
    for (const Event ev : events_) {
        if (ev.at >= run_until)
            break;
        if (ev.at > sim_.now())
            co_await sim_.delayUntil(ev.at);

        switch (ev.kind) {
        case ChaosKind::NicWedge:
            if (!hooks_.wedge)
                break;
            lastWedgeAt_ = sim_.now();
            hooks_.wedge();
            wedges_++;
            obs::tracepoint(obs::EventKind::Custom, "chaos.wedge",
                            sim_.now(), wedges_.value());
            break;

        case ChaosKind::LinkFlap: {
            if (!hooks_.uplink || !hooks_.downlink)
                break;
            net::Link *up = hooks_.uplink;
            net::Link *down = hooks_.downlink;
            up->setUp(false);
            down->setUp(false);
            flaps_++;
            obs::tracepoint(obs::EventKind::Custom, "chaos.flap",
                            sim_.now(), flaps_.value());
            sim_.scheduleCallback(sim_.now() + cfg_.flapDown,
                                  [up, down] {
                                      up->setUp(true);
                                      down->setUp(true);
                                  });
            break;
        }

        case ChaosKind::LossBurst:
            if (!hooks_.uplink || !hooks_.downlink)
                break;
            hooks_.uplink->forceDrop(
                static_cast<std::uint64_t>(cfg_.burstDrops));
            hooks_.downlink->forceDrop(
                static_cast<std::uint64_t>(cfg_.burstDrops));
            bursts_++;
            obs::tracepoint(obs::EventKind::Custom, "chaos.burst",
                            sim_.now(), bursts_.value());
            break;
        }
    }
    co_return;
}

namespace {

/** Full lifecycle cycle used as the end-of-run teardown audit. */
sim::Task
lifecycleCycle(driver::NicInterface &nic, bool *done)
{
    if (nic.supportsLifecycle()) {
        co_await nic.quiesce();
        co_await nic.reset();
        co_await nic.reinit();
    }
    *done = true;
    co_return;
}

} // namespace

ChaosKvResult
runKvClientServerChaos(sim::Simulator &sim,
                       mem::CoherentSystem &server_mem,
                       driver::NicInterface &server_nic,
                       mem::CoherentSystem &client_mem,
                       driver::NicInterface &client_nic,
                       net::Fabric &fabric, std::uint32_t server_addr,
                       std::uint32_t client_addr,
                       const ClientServerConfig &cfg,
                       const ChaosConfig &chaos_cfg,
                       const driver::WatchdogConfig &wd_cfg)
{
    ChaosConfig ccfg = chaos_cfg;
    if (ccfg.start == 0)
        ccfg.start = sim.now() + cfg.warmup;
    if (ccfg.end == 0)
        ccfg.end = sim.now() + cfg.warmup + cfg.window;

    transport::Endpoint server_ep(sim, server_mem, server_nic,
                                  cfg.tp, "server");
    transport::Endpoint client_ep(sim, client_mem, client_nic,
                                  cfg.tp, "client");

    ChaosHooks hooks;
    hooks.wedge = [&client_nic] { client_nic.wedge(); };
    hooks.uplink = &fabric.uplinkOf(client_addr);
    hooks.downlink = &fabric.downlinkOf(client_addr);
    ChaosSchedule chaos(sim, ccfg, std::move(hooks));

    driver::Watchdog wd(sim, client_nic, wd_cfg);
    wd.onFailure([&client_ep](driver::FailureKind) {
        client_ep.deviceResetBegin();
    });
    wd.onRecovered([&client_ep, &chaos](Tick) {
        client_ep.deviceResetComplete();
        chaos.noteRecovered();
    });

    ChaosKvResult r;
    r.kv = runReliableWithEndpoints(
        sim, server_mem, server_ep, client_ep, server_addr, cfg,
        [&wd, &chaos](Tick run_until) {
            wd.start(run_until);
            chaos.arm(run_until);
        });

    // Teardown audit: hot-reset both NICs so every ring- or
    // shadow-held buffer is reclaimed, then ask the pools what never
    // came back. A buffer the data plane truly dropped on the floor
    // is unreachable from any ring and shows up here.
    bool client_down = false;
    bool server_down = false;
    sim.spawn(lifecycleCycle(client_nic, &client_down));
    sim.spawn(lifecycleCycle(server_nic, &server_down));
    const Tick teardown_deadline = sim.now() + sim::fromUs(500.0);
    while (!(client_down && server_down) &&
           sim.now() < teardown_deadline)
        sim.run(sim.now() + sim::fromUs(10.0));

    r.leakedBufs = client_nic.auditLeaks() + server_nic.auditLeaks();
    bool live = client_nic.operational() && server_nic.operational();
    for (int q = 0; live && q < client_nic.numQueues(); ++q)
        live = client_nic.health(q).txOutstanding == 0;
    for (int q = 0; live && q < server_nic.numQueues(); ++q)
        live = server_nic.health(q).txOutstanding == 0;
    r.ringsLive = live;

    r.wedgesInjected = chaos.wedgesInjected();
    r.flapsInjected = chaos.flapsInjected();
    r.burstsInjected = chaos.burstsInjected();
    r.recoveries = wd.stats().recoveries.value();
    r.deviceResets = client_ep.stats().deviceResets.value();
    const stats::Histogram &h = chaos.recoveryLatency();
    if (h.count() > 0) {
        r.recoveryP50Ns = sim::toNs(h.percentile(50.0));
        r.recoveryP99Ns = sim::toNs(h.percentile(99.0));
        r.recoveryMaxNs = sim::toNs(h.max());
    }
    return r;
}

} // namespace ccn::workload
