/**
 * @file
 * Figure 14 reproduction: (a) inline vs register signaling, and (b)
 * descriptor layout (optimized grouped / packed / padded), measured as
 * peak 64B packet rate and minimum latency on SPR.
 */

#include "bench/common.hh"
#include "stats/json.hh"

using namespace ccn;
using namespace ccn::bench;

namespace {

void
variant(const char *name, const ccnic::CcNicConfig &cfg,
        const mem::PlatformConfig &plat, int cores, double guess,
        const char *note, stats::Table &t)
{
    auto mk = [&] { return makeCcNicWorld(plat, cfg); };
    workload::LoopbackConfig lc;
    lc.threads = cores;
    lc.window = sim::fromUs(100.0);
    auto peak = findPeak(mk, lc, guess);
    t.row().cell(name).cell(peak.achievedMpps, 1)
        .cell(minLatencyNs(mk), 0).cell(note);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    // Profile every variant: the distinct regionTag per layout lets
    // the ping-pong detector (and tools/c2c_report.py --check-fig14)
    // show that packed 16B descriptor lines thrash while the grouped
    // 4+1 layout's intended two-way lines do not.
    obs::CoherenceProfiler::setDefaultEnabled(true);
    stats::JsonReport json("fig14_signaling_layout");
    auto spr = mem::sprConfig();
    const int cores = 32;

    stats::banner("Figure 14a: signaling (SPR, 64B)");
    stats::Table a({"signal", "peak_Mpps", "min_ns", "paper"});
    {
        auto cfg = ccnic::optimizedConfig(cores, 0, spr);
        cfg.regionTag = "sig_inline";
        variant("inline", cfg, spr, cores, 28e6 * cores, "baseline",
                a);
    }
    {
        auto cfg = ccnic::optimizedConfig(cores, 0, spr);
        cfg.signal = driver::SignalMode::Register;
        cfg.regionTag = "sig_register";
        variant("register", cfg, spr, cores, 22e6 * cores,
                "paper: 1.3x lower rate, +59% min latency", a);
    }
    a.print();
    json.add("signaling", a);

    stats::banner("Figure 14b: descriptor layout (SPR, 64B)");
    stats::Table b({"layout", "peak_Mpps", "min_ns", "paper"});
    {
        auto cfg = ccnic::optimizedConfig(cores, 0, spr);
        cfg.regionTag = "opt_grouped";
        variant("opt (grouped)", cfg, spr, cores, 28e6 * cores,
                "3.0x tput of pad, min lat of pad", b);
    }
    {
        auto cfg = ccnic::optimizedConfig(cores, 0, spr);
        cfg.layout = driver::RingLayout::Packed;
        cfg.regionTag = "pack16";
        variant("pack (16B)", cfg, spr, cores, 26e6 * cores,
                "2.9x tput of pad, but thrashes (higher lat)", b);
    }
    {
        auto cfg = ccnic::optimizedConfig(cores, 0, spr);
        cfg.layout = driver::RingLayout::Padded;
        cfg.regionTag = "pad64";
        variant("pad (64B)", cfg, spr, cores, 10e6 * cores,
                "low latency, 1/3 the throughput", b);
    }
    b.print();
    json.add("descriptor_layout", b);
    ccn::bench::addObsSections(json);
    json.write();
    opts.finish();
    return 0;
}
