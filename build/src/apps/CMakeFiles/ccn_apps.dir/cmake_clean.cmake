file(REMOVE_RECURSE
  "CMakeFiles/ccn_apps.dir/kvstore.cc.o"
  "CMakeFiles/ccn_apps.dir/kvstore.cc.o.d"
  "CMakeFiles/ccn_apps.dir/tcprpc.cc.o"
  "CMakeFiles/ccn_apps.dir/tcprpc.cc.o.d"
  "libccn_apps.a"
  "libccn_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccn_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
