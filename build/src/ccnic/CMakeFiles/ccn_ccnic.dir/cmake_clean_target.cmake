file(REMOVE_RECURSE
  "libccn_ccnic.a"
)
