/**
 * @file
 * TAS-lite TCP echo RPC service (§5.7).
 *
 * Models the paper's TAS experiment: userspace TCP fast-path threads
 * handle the per-packet data plane (flow-state lookups plus protocol
 * processing) over the NIC interface, echoing 64B RPCs for a fixed
 * population of flows. The experiment measures how many fast-path
 * threads are needed to reach 95% of peak throughput for each NIC
 * interface; the TCP state machine itself is abstracted into its
 * per-packet cost (documented substitution in DESIGN.md).
 */

#ifndef CCN_APPS_TCPRPC_HH
#define CCN_APPS_TCPRPC_HH

#include <functional>

#include "apps/kvstore.hh" // WireModel.
#include "driver/nic_iface.hh"
#include "mem/coherence.hh"

namespace ccn::apps {

/** TAS-lite configuration. */
struct TcpRpcConfig
{
    int fastPathThreads = 3;   ///< Fast-path (data plane) threads.
    int flows = 96;            ///< Client flow population.
    std::uint32_t rpcBytes = 64;
    double offeredOps = 120e6; ///< Offered beyond peak.
    double tcpCycles = 70;     ///< Per-packet TCP fast-path work.
    double appCycles = 30;     ///< Echo application work.
    sim::Tick warmup = sim::fromUs(50.0);
    sim::Tick window = sim::fromUs(200.0);
    std::uint64_t seed = 21;
};

struct TcpRpcResult
{
    double mopsPerSec = 0;
    std::uint64_t served = 0;
};

/** Run the echo RPC service and measure served throughput. */
TcpRpcResult runTcpRpc(
    sim::Simulator &sim, mem::CoherentSystem &mem_system,
    driver::NicInterface &nic,
    std::function<void(int, const ccnic::WirePacket &)> inject,
    std::function<void(
        std::function<void(int, const ccnic::WirePacket &)>)>
        set_tx_sink,
    WireModel &wire, const TcpRpcConfig &cfg);

} // namespace ccn::apps

#endif // CCN_APPS_TCPRPC_HH
