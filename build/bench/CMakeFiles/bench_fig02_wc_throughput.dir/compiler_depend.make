# Empty compiler generated dependencies file for bench_fig02_wc_throughput.
# This may be replaced when dependencies are built.
