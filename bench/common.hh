/**
 * @file
 * Shared helpers for the per-figure benchmark binaries.
 *
 * Every bench builds fresh simulated worlds per measurement point
 * (deterministic, seeded) and prints measured values next to the
 * paper's reported numbers so EXPERIMENTS.md can be assembled straight
 * from bench output.
 *
 * World construction and the interface-family registry live in
 * src/scenario/world.hh (shared with the scenario runner); this
 * header re-exports them under ccn::bench so the per-figure binaries
 * keep their historical spelling, and adds the bench-only
 * command-line plumbing.
 */

#ifndef CCN_BENCH_COMMON_HH
#define CCN_BENCH_COMMON_HH

#include <fstream>
#include <string>

#include "obs/trace.hh"
#include "scenario/world.hh"

namespace ccn::bench {

using scenario::World;
using scenario::addObsSections;
using scenario::makeCcNicWorld;
using scenario::makePcieWorld;
using scenario::makePioWorld;
using scenario::InterfaceFamily;
using scenario::interfaceFamilies;
using scenario::familyLabel;
using scenario::canonicalFamilyKey;
using scenario::worldFactory;
using scenario::runPoint;
using scenario::findPeak;
using scenario::minLatencyNs;
using scenario::CurvePoint;
using scenario::traceCurve;
using scenario::latencyAtLoadNs;

/**
 * Command-line options shared by the bench binaries.
 *
 * `--trace <file>` enables the global tracepoint ring for the whole
 * run and writes it as JSON (array of {tick, kind, name, arg}
 * objects) on finish(); summarize with tools/trace_summary.py.
 *
 * `--profile-coherence` enables the line-level coherence contention
 * profiler for every world the bench builds; the report then carries
 * populated "coherence" / "coherence_hotlines" / "coherence_matrix"
 * sections (render with tools/c2c_report.py). Profiler hooks add no
 * simulated latency, so measured results are bit-identical either
 * way.
 */
struct BenchOptions
{
    std::string traceFile;
    bool profileCoherence = false;

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions o;
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--trace" && i + 1 < argc) {
                o.traceFile = argv[++i];
                obs::Trace::global().enable(1 << 18);
            } else if (a == "--profile-coherence") {
                o.profileCoherence = true;
                obs::CoherenceProfiler::setDefaultEnabled(true);
            }
        }
        return o;
    }

    /** Write the accumulated trace if --trace was given. */
    void
    finish() const
    {
        if (traceFile.empty())
            return;
        std::ofstream f(traceFile);
        f << obs::Trace::global().json() << "\n";
    }
};

} // namespace ccn::bench

#endif // CCN_BENCH_COMMON_HH
