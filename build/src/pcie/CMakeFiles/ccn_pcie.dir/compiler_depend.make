# Empty compiler generated dependencies file for ccn_pcie.
# This may be replaced when dependencies are built.
