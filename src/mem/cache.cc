#include "mem/cache.hh"

#include <bit>
#include <cassert>

namespace ccn::mem {

namespace {

/** Largest power of two not exceeding @p v (v >= 1). */
std::uint32_t
floorPow2(std::uint32_t v)
{
    return std::uint32_t{1} << (31 - std::countl_zero(v));
}

} // namespace

SetAssocCache::SetAssocCache(std::uint32_t total_lines, std::uint32_t ways)
    : numSets_(floorPow2(std::max<std::uint32_t>(1, total_lines / ways))),
      ways_(ways)
{
    entries_.resize(static_cast<std::size_t>(numSets_) * ways_);
}

std::uint32_t
SetAssocCache::setIndex(Addr line) const
{
    // Hash the line number over the sets. Using the raw line index
    // modulo sets preserves the real stride-conflict behaviour that the
    // paper's small-buffer optimization depends on (4KB-strided buffers
    // landing in a fraction of the sets).
    return static_cast<std::uint32_t>((line / kLineBytes) &
                                      (numSets_ - 1));
}

CacheEntry *
SetAssocCache::find(Addr line)
{
    CacheEntry *set = &entries_[static_cast<std::size_t>(setIndex(line)) *
                                ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid() && set[w].line == line)
            return &set[w];
    }
    return nullptr;
}

const CacheEntry *
SetAssocCache::find(Addr line) const
{
    return const_cast<SetAssocCache *>(this)->find(line);
}

CacheEntry *
SetAssocCache::touch(Addr line)
{
    CacheEntry *e = find(line);
    if (e)
        e->lruStamp = ++stamp_;
    return e;
}

CacheEntry *
SetAssocCache::insert(Addr line, LineState state, bool dirty,
                      Eviction *evicted)
{
    assert(find(line) == nullptr && "line already present");
    if (evicted)
        evicted->valid = false;

    CacheEntry *set = &entries_[static_cast<std::size_t>(setIndex(line)) *
                                ways_];
    CacheEntry *victim = &set[0];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!set[w].valid()) {
            victim = &set[w];
            break;
        }
        if (set[w].lruStamp < victim->lruStamp)
            victim = &set[w];
    }

    if (victim->valid() && evicted) {
        evicted->valid = true;
        evicted->line = victim->line;
        evicted->state = victim->state;
        evicted->dirty = victim->dirty;
    }

    victim->line = line;
    victim->state = state;
    victim->dirty = dirty;
    victim->readyAt = 0;
    victim->wasPrefetch = false;
    victim->lruStamp = ++stamp_;
    return victim;
}

bool
SetAssocCache::erase(Addr line)
{
    CacheEntry *e = find(line);
    if (!e)
        return false;
    e->state = LineState::Invalid;
    e->dirty = false;
    return true;
}

void
SetAssocCache::clear()
{
    for (auto &e : entries_) {
        e.state = LineState::Invalid;
        e.dirty = false;
    }
}

std::uint64_t
SetAssocCache::countValid() const
{
    std::uint64_t n = 0;
    for (const auto &e : entries_) {
        if (e.valid())
            ++n;
    }
    return n;
}

} // namespace ccn::mem
