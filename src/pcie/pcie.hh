/**
 * @file
 * PCIe interconnect model: MMIO (UC and write-combining) host-initiated
 * paths and device-initiated DMA with DDIO.
 *
 * Models the asymmetric interface the paper dissects in §2:
 *  - UC MMIO loads are full PCIe roundtrips (~982ns measured on the
 *    paper's ICX + E810 testbed).
 *  - UC MMIO stores are posted but serialized one-in-flight.
 *  - WC stores fill a finite pool of per-core write-combining buffers;
 *    full-line flushes pipeline efficiently, while partial-line
 *    evictions are serialized and slow — the Figure 3 latency knee at
 *    N = 24 buffers.
 *  - DMA reads pay a device-to-host roundtrip plus memory access; DMA
 *    writes allocate into the host LLC (DDIO).
 */

#ifndef CCN_PCIE_PCIE_HH
#define CCN_PCIE_PCIE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "mem/coherence.hh"
#include "sim/simulator.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace ccn::pcie {

/** PCIe link and endpoint timing parameters. */
struct PcieParams
{
    /// Effective data rate per direction (PCIe 4.0 x16; the paper
    /// quotes a 252Gbps link).
    double linkBytesPerSec = sim::gbpsToBytesPerSec(252.0);

    /// TLP header/framing overhead applied to every transfer.
    double tlpOverhead = 1.12;

    sim::Tick hostToDevLat = sim::fromNs(440.0); ///< Posted write transit.
    sim::Tick devToHostLat = sim::fromNs(440.0); ///< Upstream transit.
    sim::Tick devProcLat = sim::fromNs(100.0);   ///< Endpoint processing.

    /// Extra host-side latency for >32B (AVX512) MMIO reads; calibrated
    /// to the paper's 982ns (8B) vs 1026ns (64B) measurements.
    sim::Tick wideReadExtraLat = sim::fromNs(44.0);

    /// CPU-visible cost of a serialized UC store (one in flight).
    sim::Tick ucStoreCpuLat = sim::fromNs(95.0);

    /// Write-combining buffers per core (Figure 3 knee at N = 24).
    int wcBuffers = 24;

    /// Cost of a WC store that hits an already-open buffer.
    sim::Tick wcFillLat = sim::fromNs(0.8);

    /// Root-complex accept pacing for pipelined full-line WC flushes.
    sim::Tick wcFullFlushPace = sim::fromNs(6.0);

    /// Serialized completion latency of a partial-line WC eviction
    /// (device-dependent; drives the Figure 3 slope).
    sim::Tick wcPartialFlushLat = sim::fromNs(480.0);

    /// Drain latency an sfence observes after the last flush is issued.
    sim::Tick fenceDrainLat = sim::fromNs(55.0);

    /// DMA engine fixed setup per operation.
    sim::Tick dmaSetupLat = sim::fromNs(40.0);

    /// Outstanding DMA operations the device can keep in flight.
    int dmaTags = 32;
};

/**
 * One PCIe link between a host socket and a device, carrying MMIO and
 * DMA traffic. Host-initiated operations are charged to the calling
 * coroutine; device-initiated operations are used by NIC device models.
 */
class PcieLink
{
  public:
    /**
     * @param sim         Simulation kernel.
     * @param params      Link and endpoint timing.
     * @param mem_system  Coherent memory system DMA targets live in.
     * @param host_socket Socket the device is attached to.
     */
    PcieLink(sim::Simulator &sim, const PcieParams &params,
             mem::CoherentSystem &mem_system, int host_socket);

    /// @name Host-initiated MMIO.
    /// @{
    /** UC MMIO read of @p bytes: a full PCIe roundtrip. */
    sim::Coro<void> mmioUcRead(std::uint32_t bytes);

    /** UC MMIO posted write; the CPU stalls for the serialized issue. */
    sim::Coro<void> mmioUcWrite(std::uint32_t bytes);
    /// @}

    /// @name Device-initiated DMA.
    /// @{
    /**
     * DMA read of host memory: request downstream-to-upstream, memory
     * access (caches honored), data back down. Returns when the data
     * is at the device.
     */
    sim::Coro<void> dmaRead(mem::Addr addr, std::uint32_t bytes);

    /**
     * DMA write into host memory with DDIO: payload crosses the link
     * and allocates into the host LLC. Returns when the write is
     * globally visible (host pollers wake).
     */
    sim::Coro<void> dmaWrite(mem::Addr addr, std::uint32_t bytes);

    /**
     * Scatter DMA read of several spans in one batched operation: one
     * request roundtrip plus serialization of the total payload.
     * Models the deep DMA pipelining of real NIC ASICs.
     */
    sim::Coro<void> dmaReadMulti(
        const std::vector<mem::CoherentSystem::Span> &spans);

    /**
     * Scatter DMA write (DDIO) of several spans in one batched
     * operation; completion order follows PCIe posted-write rules, so
     * all spans are visible when this returns.
     */
    sim::Coro<void> dmaWriteMulti(
        const std::vector<mem::CoherentSystem::Span> &spans);
    /// @}

    /**
     * Posted DMA write (no completion wait at the device): charges the
     * link and performs the DDIO write, invoking @p on_complete at
     * global visibility. Used for completion/head writebacks that are
     * not on the device's critical path.
     */
    void
    postedDmaWrite(mem::Addr addr, std::uint32_t bytes,
                   std::function<void()> on_complete)
    {
        sim::Tick t = sim_.now() + params_.dmaSetupLat;
        t = up_.reserveAt(t, static_cast<std::uint64_t>(
                                 bytes * params_.tlpOverhead)) +
            params_.devToHostLat;
        t = mem_.ddioWrite(hostSocket_, addr, bytes, t);
        if (on_complete)
            sim_.scheduleCallback(t, std::move(on_complete));
    }

    /**
     * Charge link occupancy for a background (prefetched) device read
     * without putting its latency on any critical path. NIC ASICs
     * prefetch posted RX descriptors ahead of packet arrival.
     */
    void
    chargeBackgroundRead(std::uint64_t bytes)
    {
        up_.reserve(16);
        down_.reserve(static_cast<std::uint64_t>(bytes *
                                                 params_.tlpOverhead));
    }

    /** Transit delay before a posted doorbell is visible at the device. */
    sim::Tick doorbellTransit() const { return params_.hostToDevLat; }

    const PcieParams &params() const { return params_; }
    int hostSocket() const { return hostSocket_; }

    /** Data bytes moved in each direction (for reports). */
    std::uint64_t bytesDownstream() const { return down_.bytesServed(); }
    std::uint64_t bytesUpstream() const { return up_.bytesServed(); }

  private:
    friend class WcWindow;

    sim::Simulator &sim_;
    PcieParams params_;
    mem::CoherentSystem &mem_;
    int hostSocket_;

    sim::CalendarResource down_; ///< Host-to-device direction.
    sim::CalendarResource up_;   ///< Device-to-host direction.
    sim::Semaphore dmaTags_;
    sim::Tick ucNextFree_ = 0;    ///< One UC MMIO op in flight.
    sim::Tick partialFlushNextFree_ = 0; ///< Serialized WC evictions.
};

/** Destination of a write-combining mapping. */
enum class WcTarget
{
    Device,    ///< WC MMIO BAR of a PCIe device.
    LocalDram, ///< WC-mapped host DRAM (Figure 2's "WC DRAM" case).
};

/**
 * Per-core write-combining buffer state.
 *
 * Models the finite store-buffer pool: stores open 64B-aligned
 * buffers; a fully-written buffer auto-flushes as an efficient
 * pipelined full-line write; evicting a partial buffer (to free a slot
 * or on fence) is serialized and expensive on the device path.
 */
class WcWindow
{
  public:
    WcWindow(sim::Simulator &sim, PcieLink &link, WcTarget target);

    /**
     * Write-combining store of @p bytes at @p addr (within one line).
     * Suspends only when all WC buffers are busy.
     */
    sim::Coro<void> store(mem::Addr addr, std::uint32_t bytes);

    /** sfence: flush all open buffers and wait for the drain. */
    sim::Coro<void> fence();

    /** Buffers currently open (for tests). */
    std::size_t openBuffers() const { return open_.size(); }

  private:
    struct OpenBuf
    {
        mem::Addr line;
        std::uint32_t filled;
    };

    /** Issue the flush of one buffer; returns its completion tick. */
    sim::Tick flushBuffer(const OpenBuf &buf);

    sim::Simulator &sim_;
    PcieLink &link_;
    WcTarget target_;
    std::deque<OpenBuf> open_;          ///< Oldest first.
    std::deque<sim::Tick> inflight_;    ///< Flush completions pending.
    sim::Tick lastFlushDone_ = 0;
};

} // namespace ccn::pcie

#endif // CCN_PCIE_PCIE_HH
