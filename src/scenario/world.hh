/**
 * @file
 * World construction: the interface-family registry and the factories
 * that build a simulated machine with one NIC attached.
 *
 * This is the single place that knows how to turn a family key
 * ("ccnic", "pcie_e810", "pio", ...) into a running world. Benches,
 * examples, and the scenario runner all build through here, so adding
 * an interface family is one registry entry plus one factory case.
 *
 * Two world shapes:
 *
 *  - World: self-contained (owns its Simulator + Sampler). One per
 *    loopback measurement point; what every bench uses.
 *  - HostWorld: one host on a shared Simulator, for multi-host fabric
 *    scenarios where several machines must advance in one event loop.
 */

#ifndef CCN_SCENARIO_WORLD_HH
#define CCN_SCENARIO_WORLD_HH

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ccnic/ccnic.hh"
#include "mem/platform.hh"
#include "net/fabric.hh"
#include "nic/pcie_nic.hh"
#include "obs/coherence_profiler.hh"
#include "obs/obs.hh"
#include "obs/sampler.hh"
#include "obs/span.hh"
#include "pio/pio.hh"
#include "stats/json.hh"
#include "workload/loopback.hh"

namespace ccn::scenario {

/** A self-contained simulated world for one measurement point. */
struct World
{
    explicit World(const mem::PlatformConfig &plat)
        : simv(), system(simv, plat), rng(7), sampler(simv)
    {
        sampler.start();
    }

    sim::Simulator simv;
    mem::CoherentSystem system;
    sim::Rng rng;
    /// Time-series snapshotter: every world feeds the process-wide
    /// sample ring under its own run id, so a bench's "timeseries"
    /// section separates measurement points.
    obs::Sampler sampler;
    std::unique_ptr<driver::NicInterface> nic;
    ccnic::CcNic *ccnic = nullptr;   // Set when the NIC is a CcNic.
    nic::PcieNic *pcie = nullptr;    // Set when the NIC is a PcieNic.
    pio::PioNic *pio = nullptr;      // Set when the NIC is a PioNic.
};

/**
 * Append the standard observability sections every bench and scenario
 * report emits:
 *
 *  - "counters": aggregated Registry snapshot (name, kind, value).
 *  - "latency": per-stage packet lifecycle latency percentiles from
 *    the sampled span table (paper Fig 7/11 stage decomposition).
 *  - "timeseries": interval snapshots of counter deltas / gauge
 *    changes recorded by each World's Sampler.
 *
 * Plus the coherence-profiler sections (all-zero counts unless the
 * run enabled profiling via --profile-coherence / `profile
 * coherence;` — the region registry itself is always active):
 *
 *  - "coherence": per-region traffic totals with attribution.
 *  - "coherence_hotlines": top contended lines, perf-c2c style.
 *  - "coherence_matrix": region x (requester, supplier) traffic.
 */
inline void
addObsSections(stats::JsonReport &json)
{
    json.add("counters", obs::Registry::global().snapshot());
    json.add("latency", obs::SpanTable::global().table());
    json.add("timeseries", obs::Sampler::table());
    json.add("coherence", obs::CoherenceProfiler::regionTable());
    json.add("coherence_hotlines",
             obs::CoherenceProfiler::hotLineTable());
    json.add("coherence_matrix", obs::CoherenceProfiler::matrixTable());
}

/**
 * Parse a scenario/bench batch spec into a driver::BatchPolicy:
 * "" or "off" → coalescing disabled, a positive integer → Fixed with
 * that publish target, "adaptive" → Adaptive with the default start
 * target. Throws std::invalid_argument on anything else so typos in
 * baselines and CI configs fail loudly.
 */
inline driver::BatchPolicy
batchPolicyFromSpec(const std::string &spec)
{
    driver::BatchPolicy p;
    if (spec.empty() || spec == "off")
        return p;
    if (spec == "adaptive") {
        p.mode = driver::BatchMode::Adaptive;
        return p;
    }
    char *end = nullptr;
    const unsigned long n = std::strtoul(spec.c_str(), &end, 10);
    if (end == spec.c_str() || *end != '\0' || n == 0)
        throw std::invalid_argument(
            "bad batch spec '" + spec +
            "' (expected off, adaptive, or a positive size)");
    p.mode = driver::BatchMode::Fixed;
    p.size = static_cast<std::uint32_t>(n);
    p.maxSize = std::max(p.maxSize, p.size);
    return p;
}

/** Build a world with a CC-NIC (or variant) attached. */
inline std::unique_ptr<World>
makeCcNicWorld(const mem::PlatformConfig &plat,
               const ccnic::CcNicConfig &cfg, int host_socket = 0,
               int nic_socket = 1)
{
    auto w = std::make_unique<World>(plat);
    auto n = std::make_unique<ccnic::CcNic>(w->simv, w->system, cfg,
                                            host_socket, nic_socket,
                                            w->rng);
    w->ccnic = n.get();
    n->start();
    w->nic = std::move(n);
    return w;
}

/** Build a world with a PCIe NIC attached. */
inline std::unique_ptr<World>
makePcieWorld(const mem::PlatformConfig &plat,
              const nic::NicParams &params, int queues)
{
    auto w = std::make_unique<World>(plat);
    auto n = std::make_unique<nic::PcieNic>(w->simv, w->system, params,
                                            queues, 0, w->rng);
    w->pcie = n.get();
    n->start();
    w->nic = std::move(n);
    return w;
}

/** Build a world with a PIO message-register NIC attached. */
inline std::unique_ptr<World>
makePioWorld(const mem::PlatformConfig &plat, const pio::Config &cfg,
             int host_socket = 0, int nic_socket = 1)
{
    auto w = std::make_unique<World>(plat);
    auto n = std::make_unique<pio::PioNic>(w->simv, w->system, cfg,
                                           host_socket, nic_socket,
                                           w->rng);
    w->pio = n.get();
    n->start();
    w->nic = std::move(n);
    return w;
}

/**
 * One entry in the interface-family registry. `kind` names the
 * family's architecture (ring-over-coherence, ring-over-PCIe,
 * PIO-over-coherence) for docs and report labels.
 */
struct InterfaceFamily
{
    const char *key;   ///< Factory key (stable, used in baselines/CI).
    const char *label; ///< Human-readable series label.
    const char *kind;  ///< Architecture family.
};

/**
 * The interface families every comparison bench/example/scenario
 * enumerates. Adding an entry here (plus a worldFactory() case) wires
 * a new interface into bench_fig11_overview, bench_pio_smallmsg,
 * examples/interface_compare, and the scenario DSL at once.
 */
inline const std::vector<InterfaceFamily> &
interfaceFamilies()
{
    static const std::vector<InterfaceFamily> families = {
        {"ccnic", "CC-NIC", "ring-over-coherence"},
        {"upi_unopt", "UPI-unopt", "ring-over-coherence"},
        {"pcie_e810", "PCIe-E810", "ring-over-PCIe"},
        {"pcie_cx6", "PCIe-CX6", "ring-over-PCIe"},
        {"pio", "PIO-UPI", "PIO-over-coherence"},
        {"pio_cxl", "PIO-CXL", "PIO-over-coherence"},
    };
    return families;
}

/** Display label for an interface-family key. */
inline const char *
familyLabel(const std::string &key)
{
    for (const InterfaceFamily &f : interfaceFamilies()) {
        if (key == f.key)
            return f.label;
    }
    return key.c_str();
}

/**
 * Resolve a user-facing family name to its canonical registry key.
 * Accepts canonical keys plus the generation-agnostic spellings the
 * DSL allows ("pcie", "pcie_gen5"). Returns "" when unknown.
 */
inline std::string
canonicalFamilyKey(const std::string &name)
{
    if (name == "pcie")
        return "pcie_e810";
    if (name == "pcie_gen5")
        return "pcie_cx6";
    for (const InterfaceFamily &f : interfaceFamilies()) {
        if (name == f.key)
            return f.key;
    }
    return {};
}

/** Comma-separated canonical keys, for diagnostics. */
inline std::string
familyKeyList()
{
    std::string out;
    for (const InterfaceFamily &f : interfaceFamilies()) {
        if (!out.empty())
            out += ", ";
        out += f.key;
    }
    return out;
}

/**
 * World factory for an interface-family key: every measurement point
 * gets a fresh deterministic world with that interface attached.
 * Throws on an unknown key so baseline/CI typos fail loudly.
 *
 * @p loopback keeps TX folded back to local RX (the bench loopback
 * harness). Pass false for worlds that attach to a net::Fabric; the
 * PCIe families switch automatically when a TX sink is installed.
 */
inline std::function<std::unique_ptr<World>()>
worldFactory(const std::string &key, const mem::PlatformConfig &plat,
             int queues, bool loopback = true,
             const std::string &batch = {})
{
    const driver::BatchPolicy bp = batchPolicyFromSpec(batch);
    if (key == "ccnic") {
        return [plat, queues, loopback, bp] {
            auto cfg = ccnic::optimizedConfig(queues, 0, plat);
            cfg.loopback = loopback;
            cfg.batch = bp;
            return makeCcNicWorld(plat, cfg);
        };
    }
    if (key == "upi_unopt") {
        return [plat, queues, loopback, bp] {
            auto cfg = ccnic::unoptimizedConfig(queues, 0, plat);
            cfg.loopback = loopback;
            cfg.batch = bp;
            return makeCcNicWorld(plat, cfg);
        };
    }
    if (key == "pcie_e810") {
        return [plat, queues, bp] {
            auto params = nic::e810Params();
            params.batch = bp;
            return makePcieWorld(plat, params, queues);
        };
    }
    if (key == "pcie_cx6") {
        return [plat, queues, bp] {
            auto params = nic::cx6Params();
            params.batch = bp;
            return makePcieWorld(plat, params, queues);
        };
    }
    if (key == "pio") {
        return [plat, queues, loopback, bp] {
            auto cfg = pio::upiConfig(queues, 0, plat);
            cfg.loopback = loopback;
            cfg.batch = bp;
            return makePioWorld(plat, cfg);
        };
    }
    if (key == "pio_cxl") {
        return [plat, queues, loopback, bp] {
            auto cfg = pio::cxlConfig(queues, 0, plat);
            cfg.loopback = loopback;
            cfg.batch = bp;
            return makePioWorld(plat, cfg);
        };
    }
    throw std::invalid_argument("unknown interface family: " + key);
}

/**
 * One host on a shared Simulator: a memory system plus a NIC, for
 * multi-host fabric scenarios. Unlike World it owns no Simulator or
 * Sampler — the scenario run provides one of each for all hosts.
 */
struct HostWorld
{
    HostWorld(sim::Simulator &sim, const mem::PlatformConfig &plat,
              std::uint64_t seed)
        : system(sim, plat), rng(seed)
    {}

    mem::CoherentSystem system;
    sim::Rng rng;
    std::unique_ptr<driver::NicInterface> nic;
    ccnic::CcNic *ccnic = nullptr;
    nic::PcieNic *pcie = nullptr;
    pio::PioNic *pio = nullptr;
};

/**
 * Build one fabric-ready host (loopback off) for a canonical family
 * key on the shared simulator. Throws std::invalid_argument on an
 * unknown key.
 */
inline std::unique_ptr<HostWorld>
makeHost(sim::Simulator &sim, const std::string &key,
         const mem::PlatformConfig &plat, int queues,
         std::uint64_t seed, const std::string &batch = {})
{
    const driver::BatchPolicy bp = batchPolicyFromSpec(batch);
    auto w = std::make_unique<HostWorld>(sim, plat, seed);
    if (key == "ccnic" || key == "upi_unopt") {
        auto cfg = key == "ccnic"
                       ? ccnic::optimizedConfig(queues, 0, plat)
                       : ccnic::unoptimizedConfig(queues, 0, plat);
        cfg.loopback = false;
        cfg.batch = bp;
        auto n = std::make_unique<ccnic::CcNic>(sim, w->system, cfg, 0,
                                                1, w->rng);
        w->ccnic = n.get();
        n->start();
        w->nic = std::move(n);
    } else if (key == "pcie_e810" || key == "pcie_cx6") {
        nic::NicParams params = key == "pcie_e810"
                                    ? nic::e810Params()
                                    : nic::cx6Params();
        params.batch = bp;
        auto n = std::make_unique<nic::PcieNic>(sim, w->system, params,
                                                queues, 0, w->rng);
        w->pcie = n.get();
        n->start();
        w->nic = std::move(n);
    } else if (key == "pio" || key == "pio_cxl") {
        auto cfg = key == "pio" ? pio::upiConfig(queues, 0, plat)
                                : pio::cxlConfig(queues, 0, plat);
        cfg.loopback = false;
        cfg.batch = bp;
        auto n = std::make_unique<pio::PioNic>(sim, w->system, cfg, 0,
                                               1, w->rng);
        w->pio = n.get();
        n->start();
        w->nic = std::move(n);
    } else {
        throw std::invalid_argument("unknown interface family: " +
                                    key);
    }
    return w;
}

/** Fabric attachment hooks for whatever NIC the host carries. */
inline net::NicPortHooks
hostHooks(HostWorld &w)
{
    if (w.ccnic)
        return net::hooksFor(*w.ccnic);
    if (w.pcie)
        return net::hooksFor(*w.pcie);
    if (w.pio)
        return net::hooksFor(*w.pio);
    throw std::logic_error("host has no NIC attached");
}

/** Run one loopback point in a fresh world built by @p factory. */
inline workload::LoopbackResult
runPoint(const std::function<std::unique_ptr<World>()> &factory,
         workload::LoopbackConfig cfg)
{
    auto w = factory();
    return workload::runLoopback(w->simv, w->system, *w->nic, cfg);
}

/**
 * Find the peak sustainable packet rate: sweep offered load on a
 * geometric grid around @p guess_pps and return the best achieved
 * rate (the paper's "maximum sustainable rate" methodology).
 */
inline workload::LoopbackResult
findPeak(const std::function<std::unique_ptr<World>()> &factory,
         workload::LoopbackConfig cfg, double guess_pps)
{
    workload::LoopbackResult best;
    for (double f : {0.8, 1.0, 1.3}) {
        cfg.offeredPps = guess_pps * f;
        auto r = runPoint(factory, cfg);
        if (r.achievedMpps > best.achievedMpps)
            best = r;
    }
    return best;
}

/** Measure the closed-loop (window=1) minimum latency. */
inline double
minLatencyNs(const std::function<std::unique_ptr<World>()> &factory,
             std::uint32_t pkt_size = 64)
{
    workload::LoopbackConfig cfg;
    cfg.threads = 1;
    cfg.pktSize = pkt_size;
    cfg.closedWindow = 1;
    cfg.window = sim::fromUs(250.0);
    auto r = runPoint(factory, cfg);
    return r.minNs;
}

/**
 * Trace a throughput-latency curve: open-loop rates up to slightly
 * past saturation. Returns (achievedMpps, medianNs) pairs.
 */
struct CurvePoint
{
    double offeredMpps, achievedMpps, medianNs, gbps;
};

inline std::vector<CurvePoint>
traceCurve(const std::function<std::unique_ptr<World>()> &factory,
           workload::LoopbackConfig cfg, double max_pps, int points = 7)
{
    std::vector<CurvePoint> out;
    for (int i = 1; i <= points; ++i) {
        const double frac =
            static_cast<double>(i) / static_cast<double>(points);
        cfg.offeredPps = max_pps * frac * frac; // Dense near the knee.
        auto r = runPoint(factory, cfg);
        out.push_back({r.offeredMpps, r.achievedMpps, r.medianNs,
                       r.gbps});
    }
    return out;
}

/** Latency at approximately the given fraction of peak load. */
inline double
latencyAtLoadNs(const std::function<std::unique_ptr<World>()> &factory,
                workload::LoopbackConfig cfg, double peak_pps,
                double fraction)
{
    cfg.offeredPps = peak_pps * fraction;
    auto r = runPoint(factory, cfg);
    return r.medianNs;
}

} // namespace ccn::scenario

#endif // CCN_SCENARIO_WORLD_HH
