/**
 * @file
 * Coroutine types for simulation processes.
 *
 * Two coroutine flavours are used throughout the simulator:
 *
 *  - Task: a top-level, detached simulation process (a host core's
 *    polling loop, a NIC engine, a traffic generator). Tasks are spawned
 *    onto a Simulator, which owns their frames and reaps them at
 *    teardown, so a simulation can be stopped while processes are still
 *    suspended without leaking frames.
 *
 *  - Coro<T>: a lazily-started awaitable subroutine used for composable
 *    async operations (a memory access that must wait on interconnect
 *    resources, a driver call that performs several accesses). Awaiting
 *    a Coro starts it via symmetric transfer and resumes the awaiter
 *    when it returns.
 */

#ifndef CCN_SIM_TASK_HH
#define CCN_SIM_TASK_HH

#include <coroutine>
#include <cstdlib>
#include <exception>
#include <optional>
#include <utility>

namespace ccn::sim {

/**
 * Detached top-level simulation process.
 *
 * A function returning Task is a simulation process. Creating it does
 * not run any code (initial_suspend is suspend_always); pass the Task to
 * Simulator::spawn() to schedule it. The Simulator takes ownership of
 * the coroutine frame.
 */
class Task
{
  public:
    struct promise_type
    {
        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        // Suspend at the end so the Simulator can observe done() and
        // destroy the frame; the frame is never self-destroying.
        std::suspend_always final_suspend() noexcept { return {}; }

        void return_void() {}

        void unhandled_exception() { std::terminate(); }
    };

    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            if (handle_)
                handle_.destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    ~Task()
    {
        // Only destroyed if never spawned; Simulator::spawn releases.
        if (handle_)
            handle_.destroy();
    }

    /** Release ownership of the frame (used by Simulator::spawn). */
    Handle
    release()
    {
        return std::exchange(handle_, nullptr);
    }

    bool valid() const { return static_cast<bool>(handle_); }

  private:
    Handle handle_;
};

/**
 * Lazily-started awaitable coroutine returning T.
 *
 * The frame is owned by the Coro object (RAII); the typical pattern is
 * `T v = co_await someAsyncFn(...);` where the temporary Coro lives for
 * the duration of the await. Completion resumes the awaiting coroutine
 * via symmetric transfer, so arbitrarily deep await chains do not grow
 * the native stack.
 */
template <typename T>
class [[nodiscard]] Coro
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation;
        std::optional<T> value;

        Coro
        get_return_object()
        {
            return Coro(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }

        template <typename U>
        void
        return_value(U &&v)
        {
            value.emplace(std::forward<U>(v));
        }

        void unhandled_exception() { std::terminate(); }
    };

    using Handle = std::coroutine_handle<promise_type>;

    explicit Coro(Handle h) : handle_(h) {}

    Coro(const Coro &) = delete;
    Coro &operator=(const Coro &) = delete;

    Coro(Coro &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    ~Coro()
    {
        if (handle_)
            handle_.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle_.promise().continuation = cont;
        return handle_;
    }

    T
    await_resume()
    {
        return std::move(*handle_.promise().value);
    }

  private:
    Handle handle_;
};

/** Coro<void> specialization: an awaitable async procedure. */
template <>
class [[nodiscard]] Coro<void>
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation;

        Coro
        get_return_object()
        {
            return Coro(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }

        void return_void() {}

        void unhandled_exception() { std::terminate(); }
    };

    using Handle = std::coroutine_handle<promise_type>;

    explicit Coro(Handle h) : handle_(h) {}

    Coro(const Coro &) = delete;
    Coro &operator=(const Coro &) = delete;

    Coro(Coro &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    ~Coro()
    {
        if (handle_)
            handle_.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle_.promise().continuation = cont;
        return handle_;
    }

    void await_resume() {}

  private:
    Handle handle_;
};

} // namespace ccn::sim

#endif // CCN_SIM_TASK_HH
