/**
 * @file
 * Tests for the coherent memory system, including the calibration
 * checks that tie the model to the paper's Figure 7 latencies and the
 * protocol behaviours (invalidation signaling, evictions, prefetch,
 * counters) the CC-NIC design depends on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "mem/coherence.hh"
#include "mem/platform.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "workload/chaos.hh"

namespace {

using namespace ccn;
using mem::Addr;
using mem::AgentId;
using mem::CoherentSystem;
using mem::kLineBytes;
using sim::Tick;

/** Run an async test body to completion on a fresh simulator. */
sim::Task
runBody(std::function<sim::Coro<void>()> body, bool &done)
{
    co_await body();
    done = true;
}

struct MemFixture
{
    explicit MemFixture(const mem::PlatformConfig &cfg)
        : system(simv, cfg)
    {
        reader0 = system.addAgent(0);  // "host" core, socket 0.
        writer0 = system.addAgent(0);  // another socket-0 core.
        writer1 = system.addAgent(1);  // remote ("NIC") core.
    }

    void
    run(std::function<sim::Coro<void>()> body)
    {
        bool done = false;
        simv.spawn(runBody(std::move(body), done));
        simv.run();
        ASSERT_TRUE(done) << "test body deadlocked";
    }

    sim::Simulator simv;
    CoherentSystem system;
    AgentId reader0 = -1, writer0 = -1, writer1 = -1;
};

double
nsBetween(Tick a, Tick b)
{
    return sim::toNs(b - a);
}

/** Measure the five Figure 7 access cases; tolerance is ±8%. */
void
checkFig7(const mem::PlatformConfig &cfg, double l_dram, double r_dram,
          double l_l2, double r_l2_rh, double r_l2_lh)
{
    MemFixture f(cfg);
    auto &m = f.system;
    double meas[5] = {0, 0, 0, 0, 0};

    f.run([&]() -> sim::Coro<void> {
        // Local DRAM: untouched line homed on the reader's socket.
        Addr a = m.alloc(0, kLineBytes);
        Tick t0 = f.simv.now();
        co_await m.load(f.reader0, a, 8);
        meas[0] = nsBetween(t0, f.simv.now());

        // Remote DRAM: untouched line homed on the remote socket.
        a = m.alloc(1, kLineBytes);
        t0 = f.simv.now();
        co_await m.load(f.reader0, a, 8);
        meas[1] = nsBetween(t0, f.simv.now());

        // Local L2: another same-socket core holds the line Modified.
        a = m.alloc(0, kLineBytes);
        co_await m.store(f.writer0, a, 8);
        co_await f.simv.delay(sim::fromUs(1.0));
        t0 = f.simv.now();
        co_await m.load(f.reader0, a, 8);
        meas[2] = nsBetween(t0, f.simv.now());

        // Remote L2, writer-homed (rh): remote core modified a line
        // homed on its own socket.
        a = m.alloc(1, kLineBytes);
        co_await m.store(f.writer1, a, 8);
        co_await f.simv.delay(sim::fromUs(1.0));
        t0 = f.simv.now();
        co_await m.load(f.reader0, a, 8);
        meas[3] = nsBetween(t0, f.simv.now());

        // Remote L2, reader-homed (lh): remote core modified a line
        // homed on the reader's socket; the reader's miss triggers a
        // speculative memory read.
        a = m.alloc(0, kLineBytes);
        co_await m.store(f.writer1, a, 8);
        co_await f.simv.delay(sim::fromUs(1.0));
        t0 = f.simv.now();
        co_await m.load(f.reader0, a, 8);
        meas[4] = nsBetween(t0, f.simv.now());
        co_return;
    });

    const double targets[5] = {l_dram, r_dram, l_l2, r_l2_rh, r_l2_lh};
    const char *names[5] = {"L DRAM", "R DRAM", "L L2", "R L2 (rh)",
                            "R L2 (lh)"};
    for (int i = 0; i < 5; ++i) {
        EXPECT_NEAR(meas[i], targets[i], targets[i] * 0.08)
            << cfg.name << " " << names[i];
    }
    // Orderings the paper calls out: remote DRAM ~2x local DRAM;
    // remote L2 faster than remote DRAM; reader-homed slower than
    // writer-homed.
    EXPECT_GT(meas[1], meas[0] * 1.7);
    EXPECT_LT(meas[3], meas[1]);
    EXPECT_GT(meas[4], meas[3]);
}

TEST(Fig7Calibration, Icx)
{
    checkFig7(mem::icxConfig(), 72, 144, 48, 114, 119);
}

TEST(Fig7Calibration, Spr)
{
    checkFig7(mem::sprConfig(), 108, 191, 82, 171, 174);
}

TEST(Coherence, ExclusiveUpgradeIsLocal)
{
    MemFixture f(mem::icxConfig());
    auto &m = f.system;
    f.run([&]() -> sim::Coro<void> {
        Addr a = m.alloc(0, kLineBytes);
        co_await m.load(f.reader0, a, 8); // E state.
        Tick t0 = f.simv.now();
        co_await m.store(f.reader0, a, 8); // E->M silently.
        EXPECT_LE(nsBetween(t0, f.simv.now()), 5.0);
        co_return;
    });
    EXPECT_EQ(m.counters(f.reader0).remoteRfos, 0u);
}

TEST(Coherence, StoreInvalidatesRemoteSharer)
{
    MemFixture f(mem::icxConfig());
    auto &m = f.system;
    f.run([&]() -> sim::Coro<void> {
        Addr a = m.alloc(0, kLineBytes);
        co_await m.load(f.reader0, a, 8);  // local E.
        co_await m.load(f.writer1, a, 8);  // remote S (downgrades).
        std::uint32_t v0 = m.lineVersion(a);
        co_await m.store(f.reader0, a, 8); // upgrade, invalidate remote.
        EXPECT_NE(m.lineVersion(a), v0);
        // The remote reader now misses and must fetch across sockets.
        auto before = m.counters(f.writer1).remoteReads;
        co_await m.load(f.writer1, a, 8);
        EXPECT_EQ(m.counters(f.writer1).remoteReads, before + 1);
        co_return;
    });
    // The upgrading store crossed the interconnect to invalidate.
    EXPECT_GE(m.counters(f.reader0).remoteRfos, 1u);
}

TEST(Coherence, WaitLineChangeWakesOnWrite)
{
    MemFixture f(mem::icxConfig());
    auto &m = f.system;
    Addr a = m.alloc(0, kLineBytes);
    Tick woke_at = 0;
    bool woke = false;

    struct Waiter
    {
        static sim::Task
        run(MemFixture &f, CoherentSystem &m, Addr a, bool &woke,
            Tick &woke_at)
        {
            co_await m.load(f.writer1, a, 8);
            std::uint32_t v = m.lineVersion(a);
            co_await m.waitLineChange(a, v);
            woke = true;
            woke_at = f.simv.now();
        }
    };
    struct Writer
    {
        static sim::Task
        run(MemFixture &f, CoherentSystem &m, Addr a)
        {
            co_await f.simv.delay(sim::fromUs(1.0));
            co_await m.store(f.reader0, a, 8);
        }
    };
    f.simv.spawn(Waiter::run(f, m, a, woke, woke_at));
    f.simv.spawn(Writer::run(f, m, a));
    f.simv.run();
    EXPECT_TRUE(woke);
    // Wakes at write completion, at or after the store began.
    EXPECT_GE(woke_at, sim::fromUs(1.0));
    EXPECT_LT(woke_at, sim::fromUs(2.0));
}

TEST(Coherence, WaitLineChangeReturnsImmediatelyOnStaleVersion)
{
    MemFixture f(mem::icxConfig());
    auto &m = f.system;
    f.run([&]() -> sim::Coro<void> {
        Addr a = m.alloc(0, kLineBytes);
        std::uint32_t v = m.lineVersion(a);
        co_await m.store(f.reader0, a, 8);
        Tick t0 = f.simv.now();
        co_await m.waitLineChange(a, v); // version already moved.
        EXPECT_EQ(f.simv.now(), t0);
        co_return;
    });
}

TEST(Coherence, L2EvictionFallsBackToLlc)
{
    auto cfg = mem::icxConfig();
    MemFixture f(cfg);
    auto &m = f.system;
    f.run([&]() -> sim::Coro<void> {
        // Fill one L2 set past associativity with same-set lines.
        const std::uint64_t set_stride =
            static_cast<std::uint64_t>(kLineBytes) *
            (cfg.l2Lines / cfg.l2Ways < 1024 ? 1024 : 1024);
        Addr base = m.alloc(0, set_stride * (cfg.l2Ways + 4), 1 << 20);
        for (std::uint32_t i = 0; i < cfg.l2Ways + 2; ++i)
            co_await m.store(f.reader0, base + i * set_stride, 8);
        // The first line was evicted (dirty) into the LLC; re-reading
        // it is an LLC hit, much faster than DRAM.
        auto llc_before = m.counters(f.reader0).llcHits;
        Tick t0 = f.simv.now();
        co_await m.load(f.reader0, base, 8);
        EXPECT_EQ(m.counters(f.reader0).llcHits, llc_before + 1);
        EXPECT_LT(nsBetween(t0, f.simv.now()), 45.0);
        co_return;
    });
}

TEST(Coherence, PrefetcherStreamsAndCanBeDisabled)
{
    MemFixture f(mem::icxConfig());
    auto &m = f.system;
    f.run([&]() -> sim::Coro<void> {
        Addr a = m.alloc(0, 64 * kLineBytes);
        for (int i = 0; i < 16; ++i)
            co_await m.load(f.reader0, a + i * kLineBytes, 8);
        EXPECT_GT(m.counters(f.reader0).prefetchIssued, 8u);
        // Prefetched lines satisfy later demand loads.
        EXPECT_GT(m.counters(f.reader0).l2Hits, 6u);

        m.setPrefetch(0, false);
        auto issued = m.counters(f.reader0).prefetchIssued;
        Addr b = m.alloc(0, 64 * kLineBytes);
        for (int i = 0; i < 16; ++i)
            co_await m.load(f.reader0, b + i * kLineBytes, 8);
        EXPECT_EQ(m.counters(f.reader0).prefetchIssued, issued);
        co_return;
    });
}

TEST(Coherence, NtStoreBypassesCachesAndInvalidates)
{
    MemFixture f(mem::icxConfig());
    auto &m = f.system;
    f.run([&]() -> sim::Coro<void> {
        Addr a = m.alloc(1, kLineBytes); // homed remote.
        co_await m.load(f.writer1, a, 8); // remote core caches it.
        std::uint32_t v = m.lineVersion(a);
        co_await m.ntStoreRange(f.reader0, a, kLineBytes);
        EXPECT_NE(m.lineVersion(a), v);
        // Data is in home DRAM only: remote core's reload is a miss
        // that goes to its local DRAM, not a cache hit.
        auto dram_before = m.counters(f.writer1).dramReads;
        co_await m.load(f.writer1, a, 8);
        EXPECT_EQ(m.counters(f.writer1).dramReads, dram_before + 1);
        co_return;
    });
}

TEST(Coherence, FlushWritesBackAndInvalidates)
{
    MemFixture f(mem::icxConfig());
    auto &m = f.system;
    f.run([&]() -> sim::Coro<void> {
        Addr a = m.alloc(0, kLineBytes);
        co_await m.store(f.reader0, a, 8);
        co_await m.flush(f.reader0, a, kLineBytes);
        // Reload comes from DRAM.
        auto dram_before = m.counters(f.reader0).dramReads;
        co_await m.load(f.reader0, a, 8);
        EXPECT_EQ(m.counters(f.reader0).dramReads, dram_before + 1);
        co_return;
    });
}

TEST(Coherence, RangeOverlapBeatsSerialAccess)
{
    MemFixture f(mem::sprConfig());
    auto &m = f.system;
    f.run([&]() -> sim::Coro<void> {
        // 24 lines (a 1.5KB packet) from remote cache: overlapped
        // fetch must be much faster than 24 serial remote latencies.
        const std::uint32_t n = 24;
        Addr a = m.alloc(1, n * kLineBytes);
        co_await m.storeRange(f.writer1, a, n * kLineBytes);
        Tick t0 = f.simv.now();
        co_await m.loadRange(f.reader0, a, n * kLineBytes);
        const double ns = nsBetween(t0, f.simv.now());
        EXPECT_LT(ns, 24 * 171.0 * 0.5);
        EXPECT_GT(ns, 171.0); // But not faster than one access.
        co_return;
    });
}

TEST(Coherence, AtomicRmwGainsOwnership)
{
    MemFixture f(mem::icxConfig());
    auto &m = f.system;
    f.run([&]() -> sim::Coro<void> {
        Addr a = m.alloc(0, kLineBytes);
        co_await m.load(f.writer1, a, 8);
        co_await m.atomicRmw(f.reader0, a);
        // Remote copy is gone; writer1 reload crosses the socket.
        auto before = m.counters(f.writer1).remoteReads;
        co_await m.load(f.writer1, a, 8);
        EXPECT_EQ(m.counters(f.writer1).remoteReads, before + 1);
        co_return;
    });
}

TEST(Coherence, CountersTrackRemoteTraffic)
{
    MemFixture f(mem::icxConfig());
    auto &m = f.system;
    f.run([&]() -> sim::Coro<void> {
        Addr a = m.alloc(1, 4 * kLineBytes);
        // Four demand remote DRAM reads.
        for (int i = 0; i < 4; ++i)
            co_await m.load(f.reader0, a + i * kLineBytes, 8);
        co_return;
    });
    const auto &c = m.counters(f.reader0);
    // Demand remote reads plus possibly prefetch traffic; demand count
    // must be exact.
    EXPECT_EQ(c.remoteReads + c.prefetchRemote >= 4, true);
    EXPECT_EQ(c.loads, 4u);
    EXPECT_EQ(m.upiBytesInto(0) > 0, true);
}

TEST(Coherence, DropCachesForcesMisses)
{
    MemFixture f(mem::icxConfig());
    auto &m = f.system;
    f.run([&]() -> sim::Coro<void> {
        Addr a = m.alloc(0, kLineBytes);
        co_await m.load(f.reader0, a, 8);
        m.dropCaches();
        auto miss_before = m.counters(f.reader0).l2Misses;
        co_await m.load(f.reader0, a, 8);
        EXPECT_EQ(m.counters(f.reader0).l2Misses, miss_before + 1);
        co_return;
    });
}

TEST(Coherence, AllocRespectsHomingAndAlignment)
{
    MemFixture f(mem::icxConfig());
    auto &m = f.system;
    Addr a0 = m.alloc(0, 100, 64);
    Addr a1 = m.alloc(1, 100, 4096);
    EXPECT_EQ(mem::homeSocket(a0), 0);
    EXPECT_EQ(mem::homeSocket(a1), 1);
    EXPECT_EQ(a1 % 4096, 0u);
    EXPECT_NE(mem::lineOf(a0), mem::lineOf(m.alloc(0, 1, 64)));
}

TEST(Coherence, DeterministicReplay)
{
    auto run_once = [] {
        MemFixture f(mem::sprConfig());
        auto &m = f.system;
        f.run([&]() -> sim::Coro<void> {
            Addr a = m.alloc(0, 256 * kLineBytes);
            for (int rep = 0; rep < 3; ++rep) {
                co_await m.storeRange(f.writer1, a, 256 * kLineBytes);
                co_await m.loadRange(f.reader0, a, 256 * kLineBytes);
            }
            co_return;
        });
        return f.simv.now();
    };
    EXPECT_EQ(run_once(), run_once());
}

/**
 * Pingpong shape check (Figure 8): co-locating the two signal words on
 * one cache line must beat separate lines by the paper's 1.7-2.4x.
 */
double
pingpongNs(CoherentSystem &m, sim::Simulator &simv, AgentId ping_agent,
           AgentId pong_agent, Addr r1, Addr r2, int rounds)
{
    struct State
    {
        std::uint64_t ping = 0, pong = 0;
        Tick start = 0;
        std::vector<Tick> rtts;
    };
    State st;

    struct Ping
    {
        static sim::Task
        run(CoherentSystem &m, sim::Simulator &simv, AgentId a, Addr r1,
            Addr r2, int rounds, State &st)
        {
            for (int i = 1; i <= rounds; ++i) {
                st.start = simv.now();
                co_await m.store(a, r1, 8);
                // Logical visibility follows physical completion: the
                // value is published once the store's coherence
                // transaction is done.
                st.ping = static_cast<std::uint64_t>(i);
                for (;;) {
                    co_await m.load(a, r2, 8);
                    if (st.pong == static_cast<std::uint64_t>(i))
                        break;
                    co_await m.waitLineChange(mem::lineOf(r2),
                                              m.lineVersion(r2));
                }
                st.rtts.push_back(simv.now() - st.start);
            }
        }
    };
    struct Pong
    {
        static sim::Task
        run(CoherentSystem &m, AgentId a, Addr r1, Addr r2, int rounds,
            State &st)
        {
            for (int i = 1; i <= rounds; ++i) {
                for (;;) {
                    co_await m.load(a, r1, 8);
                    if (st.ping == static_cast<std::uint64_t>(i))
                        break;
                    co_await m.waitLineChange(mem::lineOf(r1),
                                              m.lineVersion(r1));
                }
                co_await m.store(a, r2, 8);
                st.pong = static_cast<std::uint64_t>(i);
            }
        }
    };
    simv.spawn(Ping::run(m, simv, ping_agent, r1, r2, rounds, st));
    simv.spawn(Pong::run(m, pong_agent, r1, r2, rounds, st));
    simv.run();
    // Median round trip.
    std::sort(st.rtts.begin(), st.rtts.end());
    return sim::toNs(st.rtts[st.rtts.size() / 2]);
}

TEST(FaultInjection, PoisonVisibleExactlyDuringWindow)
{
    MemFixture f(mem::icxConfig());
    auto &m = f.system;
    f.run([&]() -> sim::Coro<void> {
        Addr a = m.alloc(0, 2 * kLineBytes);
        Addr other = a + kLineBytes;

        // Zero-cost path: nothing armed, queries are free and false.
        EXPECT_FALSE(m.faultsArmed());
        EXPECT_FALSE(m.rangePoisoned(a, kLineBytes));

        const Tick hold = sim::fromUs(2.0);
        const Tick t0 = f.simv.now();
        m.injectPoison(a, hold);
        EXPECT_TRUE(m.faultsArmed());
        EXPECT_EQ(m.telemetry().poisonInjected.value(), 1u);

        // The scheduled reader (inside the window) observes poison;
        // the neighbouring line never does.
        EXPECT_TRUE(m.rangePoisoned(a, 8));
        EXPECT_FALSE(m.rangePoisoned(other, 8));
        co_await f.simv.delayUntil(t0 + hold - 1);
        EXPECT_TRUE(m.rangePoisoned(a, kLineBytes));
        EXPECT_EQ(m.telemetry().poisonReads.value(), 2u);

        // One tick past the window the line reads clean again, and
        // observations stop counting.
        co_await f.simv.delayUntil(t0 + hold);
        EXPECT_FALSE(m.rangePoisoned(a, kLineBytes));
        EXPECT_EQ(m.telemetry().poisonReads.value(), 2u);
        co_return;
    });
}

TEST(FaultInjection, TornWindowBounded)
{
    MemFixture f(mem::icxConfig());
    auto &m = f.system;
    f.run([&]() -> sim::Coro<void> {
        Addr a = m.alloc(0, kLineBytes);
        const Tick hold = sim::fromUs(1.0);
        const Tick t0 = f.simv.now();
        m.injectTorn(a, hold);
        EXPECT_EQ(m.telemetry().tornInjected.value(), 1u);

        // Stale exactly while the window is open — a validating
        // consumer rejects the slot — and clean the tick it closes.
        EXPECT_TRUE(m.rangeStale(a, kLineBytes));
        co_await f.simv.delayUntil(t0 + hold - 1);
        EXPECT_TRUE(m.rangeStale(a, 8));
        co_await f.simv.delayUntil(t0 + hold);
        EXPECT_FALSE(m.rangeStale(a, kLineBytes));

        // Torn lines are stale, not poisoned: the poison query never
        // fires for them.
        EXPECT_EQ(m.telemetry().poisonReads.value(), 0u);
        co_return;
    });
}

TEST(FaultInjection, StuckLineHoldsVersionUntilWindowCloses)
{
    MemFixture f(mem::icxConfig());
    auto &m = f.system;
    f.run([&]() -> sim::Coro<void> {
        Addr a = m.alloc(0, kLineBytes);
        const std::uint32_t v0 = m.lineVersion(a);

        const Tick hold = sim::fromUs(5.0);
        const Tick t0 = f.simv.now();
        m.injectStuck(a, hold);
        EXPECT_EQ(m.telemetry().stuckInjected.value(), 1u);

        // A write lands during the window, but the stuck invalidation
        // keeps pollers on the held version: the line looks unchanged
        // (and stale) until the window expires.
        co_await m.store(f.writer1, a, 8);
        EXPECT_EQ(m.lineVersion(a), v0);
        EXPECT_TRUE(m.rangeStale(a, kLineBytes));

        co_await f.simv.delayUntil(t0 + hold + 1);
        EXPECT_GT(m.lineVersion(a), v0);
        EXPECT_FALSE(m.rangeStale(a, kLineBytes));
        co_return;
    });
}

TEST(FaultInjection, BrownoutStretchesOnlyTargetAgentOps)
{
    MemFixture f(mem::icxConfig());
    auto &m = f.system;
    f.run([&]() -> sim::Coro<void> {
        Addr a = m.alloc(0, kLineBytes);
        Addr b = m.alloc(0, kLineBytes);

        // Baseline: a local-DRAM load with no fault armed.
        Tick t0 = f.simv.now();
        co_await m.load(f.reader0, a, 8);
        const Tick clean = f.simv.now() - t0;

        m.injectBrownout(f.reader0, 4.0, sim::fromUs(50.0));
        EXPECT_EQ(m.telemetry().brownouts.value(), 1u);

        // The browned-out agent's ops stretch by ~the factor...
        t0 = f.simv.now();
        co_await m.load(f.reader0, b, 8);
        const Tick stretched = f.simv.now() - t0;
        EXPECT_GE(stretched, 3 * clean);
        EXPECT_GT(m.telemetry().brownoutStretchedOps.value(), 0u);

        // ...while another agent on the same socket is untouched.
        Addr c = m.alloc(0, kLineBytes);
        t0 = f.simv.now();
        co_await m.load(f.writer0, c, 8);
        EXPECT_LT(f.simv.now() - t0, 2 * clean);
        co_return;
    });
}

TEST(FaultInjection, ScheduleIsSeedDeterministic)
{
    // Same seed, same config → bit-identical injection schedules;
    // a different seed must actually move events. (The schedule is
    // the only source of randomness in a chaos run, so this is the
    // reproducibility guarantee for failing runs.)
    auto events_for = [](std::uint64_t seed) {
        sim::Simulator simv;
        workload::ChaosConfig cfg;
        cfg.seed = seed;
        cfg.start = sim::fromUs(10.0);
        cfg.end = sim::fromUs(400.0);
        cfg.poisons = 4;
        cfg.torns = 3;
        cfg.stuckLines = 2;
        cfg.brownouts = 2;
        workload::ChaosSchedule s(simv, cfg, {});
        return s.events();
    };

    const auto a = events_for(0xfeedULL);
    const auto b = events_for(0xfeedULL);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), 3u + 2u + 2u + 4u + 3u + 2u + 2u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].at, b[i].at) << i;
        EXPECT_EQ(static_cast<int>(a[i].kind),
                  static_cast<int>(b[i].kind))
            << i;
    }

    const auto c = events_for(0xbeefULL);
    bool any_moved = false;
    for (std::size_t i = 0; i < a.size() && !any_moved; ++i)
        any_moved = a[i].at != c[i].at;
    EXPECT_TRUE(any_moved) << "seed change did not move any event";
}

TEST(Fig8Shape, ColocationBeatsSeparateLines)
{
    auto cfg = mem::icxConfig();
    double separate_ns = 0, colocated_ns = 0;
    {
        MemFixture f(cfg);
        Addr r1 = f.system.alloc(0, kLineBytes);
        Addr r2 = f.system.alloc(0, kLineBytes);
        separate_ns =
            pingpongNs(f.system, f.simv, f.reader0, f.writer1, r1, r2, 51);
    }
    {
        MemFixture f(cfg);
        Addr line = f.system.alloc(0, kLineBytes);
        colocated_ns = pingpongNs(f.system, f.simv, f.reader0, f.writer1,
                                  line, line + 8, 51);
    }
    const double ratio = separate_ns / colocated_ns;
    EXPECT_GE(ratio, 1.5) << "separate=" << separate_ns
                          << " colocated=" << colocated_ns;
    EXPECT_LE(ratio, 2.6) << "separate=" << separate_ns
                          << " colocated=" << colocated_ns;
}

} // namespace
